package core

import (
	"testing"

	"edgedrift/internal/health"
)

// fakeSup is a scripted supervised arm: it raises a drift alarm on its
// FireAt-th observation (counting from 1), then re-arms on Reset.
type fakeSup struct {
	FireAt int
	n      int
	resets int
}

func (s *fakeSup) Process(x []float64) Result {
	s.n++
	res := Result{Label: -1, Phase: Monitoring}
	if s.n == s.FireAt {
		res.DriftDetected = true
	}
	return res
}

func (s *fakeSup) Reset() { s.resets++; s.n = 0 }

func (s *fakeSup) MemoryBytes() int { return 8 }

func (s *fakeSup) Health() health.Snapshot {
	return health.Snapshot{PFinite: true, Phase: Monitoring.String()}
}

// fakeInner is a scripted unsupervised stage: it fires on the steps
// listed in fire, and records TriggerReconstruction calls.
type fakeInner struct {
	fire     map[int]bool
	n        int
	triggers int
}

func (s *fakeInner) Process(x []float64) Result {
	s.n++
	return Result{Label: 0, Phase: Monitoring, DriftDetected: s.fire[s.n]}
}

func (s *fakeInner) TriggerReconstruction() { s.triggers++ }

func (s *fakeInner) MemoryBytes() int { return 8 }

func (s *fakeInner) Health() health.Snapshot {
	return health.Snapshot{PFinite: true, Phase: Monitoring.String()}
}

func TestFusionPolicyParse(t *testing.T) {
	for _, p := range []FusionPolicy{FuseEither, FuseConfirm} {
		got, err := ParseFusionPolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("round trip %v: got %v, err %v", p, got, err)
		}
	}
	if _, err := ParseFusionPolicy("both"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if FusionPolicy(99).String() != "unknown" {
		t.Fatal("unknown policy must stringify as unknown")
	}
}

// TestHybridBystander: with no Observe calls the wrapped detector must
// behave bit-identically to a bare one — results and health snapshot —
// across monitoring, a drift, and reconstruction.
func TestHybridBystander(t *testing.T) {
	bare, r1 := newCalibrated(t, 90, DefaultConfig(40))
	wrapped, r2 := newCalibrated(t, 90, DefaultConfig(40))
	h := NewHybrid(wrapped, &fakeSup{FireAt: 1}, HybridConfig{})
	for i := 0; i < 2000; i++ {
		shift := 0.0
		if i >= 600 {
			shift = 6
		}
		c := i % testClasses
		a := bare.Process(sample(r1, c, shift))
		b := h.Process(sample(r2, c, shift))
		if a != b {
			t.Fatalf("step %d: bare %+v, wrapped %+v", i, a, b)
		}
	}
	if bare.Health() != h.Health() {
		t.Fatalf("health diverged:\nbare    %+v\nwrapped %+v", bare.Health(), h.Health())
	}
	if h.PhaseNow() != bare.PhaseNow() {
		t.Fatalf("phase %v vs %v", h.PhaseNow(), bare.PhaseNow())
	}
}

// TestHybridEitherTriggers: under FuseEither a supervised alarm starts
// the inner detector's reconstruction; a second alarm during that
// reconstruction fires but does not re-trigger.
func TestHybridEitherTriggers(t *testing.T) {
	d, r := newCalibrated(t, 91, DefaultConfig(40))
	sup := &fakeSup{FireAt: 5}
	h := NewHybrid(d, sup, HybridConfig{Policy: FuseEither})
	for i := 0; i < 50; i++ {
		h.Process(sample(r, i%testClasses, 0))
	}
	for i := 0; i < 4; i++ {
		if h.Observe(1, 0) {
			t.Fatalf("observation %d fired early", i)
		}
	}
	if !h.Observe(1, 0) {
		t.Fatal("5th observation must fire")
	}
	if d.PhaseNow() != Reconstructing {
		t.Fatalf("phase = %v, want Reconstructing", d.PhaseNow())
	}
	if h.SupervisedFires() != 1 || h.SupervisedTriggers() != 1 {
		t.Fatalf("fires=%d triggers=%d, want 1/1", h.SupervisedFires(), h.SupervisedTriggers())
	}
	if sup.resets != 1 {
		t.Fatalf("supervised arm reset %d times, want 1", sup.resets)
	}
	// A second supervised alarm mid-reconstruction must not re-trigger.
	for i := 0; i < 5; i++ {
		h.Observe(1, 0)
	}
	if h.SupervisedFires() != 2 || h.SupervisedTriggers() != 1 {
		t.Fatalf("fires=%d triggers=%d after mid-reconstruction alarm, want 2/1",
			h.SupervisedFires(), h.SupervisedTriggers())
	}
	if h.LabelsObserved() != 10 {
		t.Fatalf("labels observed = %d, want 10", h.LabelsObserved())
	}
	s := h.Health()
	if s.LabelsObserved != 10 || s.SupervisedFires != 2 || s.SupervisedTriggers != 1 {
		t.Fatalf("health %+v does not carry hybrid counters", s)
	}
}

// TestHybridConfirm: under FuseConfirm neither arm changes the other's
// behaviour, but alarms within the confirmation window pair up — in
// both orders.
func TestHybridConfirm(t *testing.T) {
	// Unsupervised first, supervised confirms.
	inner := &fakeInner{fire: map[int]bool{5: true}}
	sup := &fakeSup{FireAt: 1}
	h := NewHybrid(inner, sup, HybridConfig{Policy: FuseConfirm, ConfirmWindow: 10})
	x := []float64{0}
	for i := 0; i < 7; i++ {
		h.Process(x)
	}
	if !h.Observe(1, 0) {
		t.Fatal("supervised arm must fire")
	}
	if h.Confirms() != 1 {
		t.Fatalf("confirms = %d, want 1 (sup after unsup)", h.Confirms())
	}
	if inner.triggers != 0 {
		t.Fatal("FuseConfirm must never trigger reconstruction")
	}
	// Supervised first, unsupervised confirms.
	inner2 := &fakeInner{fire: map[int]bool{8: true}}
	h2 := NewHybrid(inner2, &fakeSup{FireAt: 1}, HybridConfig{Policy: FuseConfirm, ConfirmWindow: 10})
	for i := 0; i < 3; i++ {
		h2.Process(x)
	}
	h2.Observe(1, 0)
	for i := 0; i < 5; i++ {
		h2.Process(x)
	}
	if h2.Confirms() != 1 {
		t.Fatalf("confirms = %d, want 1 (unsup after sup)", h2.Confirms())
	}
	// Outside the window: no confirmation.
	inner3 := &fakeInner{fire: map[int]bool{2: true}}
	h3 := NewHybrid(inner3, &fakeSup{FireAt: 1}, HybridConfig{Policy: FuseConfirm, ConfirmWindow: 10})
	for i := 0; i < 20; i++ {
		h3.Process(x)
	}
	h3.Observe(1, 0)
	if h3.Confirms() != 0 {
		t.Fatalf("confirms = %d, want 0 (alarms 18 steps apart, window 10)", h3.Confirms())
	}
	if h3.Health().HybridConfirms != 0 || h2.Health().HybridConfirms != 1 {
		t.Fatal("health confirm counters wrong")
	}
}

// TestHybridBatchEquivalence: the batch path must produce the identical
// results and fusion counters as the per-sample path.
func TestHybridBatchEquivalence(t *testing.T) {
	d1, r1 := newCalibrated(t, 92, DefaultConfig(40))
	d2, r2 := newCalibrated(t, 92, DefaultConfig(40))
	h1 := NewHybrid(d1, &fakeSup{FireAt: 1 << 30}, HybridConfig{})
	h2 := NewHybrid(d2, &fakeSup{FireAt: 1 << 30}, HybridConfig{})
	const n = 900
	xs1 := make([][]float64, n)
	xs2 := make([][]float64, n)
	for i := 0; i < n; i++ {
		shift := 0.0
		if i >= 300 {
			shift = 6
		}
		xs1[i] = sample(r1, i%testClasses, shift)
		xs2[i] = sample(r2, i%testClasses, shift)
	}
	var got []Result
	for lo := 0; lo < n; lo += 97 {
		hi := lo + 97
		if hi > n {
			hi = n
		}
		got = h1.ProcessBatch(got, xs1[lo:hi])
	}
	for i := 0; i < n; i++ {
		want := h2.Process(xs2[i])
		if got[i] != want {
			t.Fatalf("step %d: batch %+v, per-sample %+v", i, got[i], want)
		}
	}
	if h1.Health() != h2.Health() {
		t.Fatalf("health diverged:\nbatch      %+v\nper-sample %+v", h1.Health(), h2.Health())
	}
}

// TestHybridFallbackBatch: an inner stage without the batch capability
// still satisfies ProcessBatch via the per-sample loop.
func TestHybridFallbackBatch(t *testing.T) {
	inner := &fakeInner{fire: map[int]bool{3: true}}
	h := NewHybrid(inner, &fakeSup{FireAt: 1}, HybridConfig{})
	x := []float64{0}
	dst := h.ProcessBatch(nil, [][]float64{x, x, x, x})
	if len(dst) != 4 {
		t.Fatalf("got %d results", len(dst))
	}
	if !dst[2].DriftDetected {
		t.Fatal("scripted fire lost in fallback batch path")
	}
}

func TestNewHybridPanicsOnNil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHybrid(nil, &fakeSup{}, HybridConfig{})
}

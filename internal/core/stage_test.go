package core

import (
	"math"
	"testing"

	"edgedrift/internal/health"
)

// echoStage is a minimal Streaming stage for composition tests: it
// scores each sample by its first feature and stays in Monitoring.
type echoStage struct{ n int }

func (e *echoStage) Process(x []float64) Result {
	e.n++
	return Result{Score: x[0], Phase: Monitoring}
}

func (e *echoStage) MemoryBytes() int { return 8 }

func (e *echoStage) Health() health.Snapshot {
	return health.Snapshot{SamplesSeen: e.n, PFinite: true, Phase: "monitoring"}
}

// TestGuardNestedHealthCounters locks the stage-composition contract:
// stages compose by wrapping, so a guard around a guard must report the
// sum of both guards' ingestion counters, not clobber the inner one's.
func TestGuardNestedHealthCounters(t *testing.T) {
	nan := []float64{math.NaN()}

	inner := NewGuard(&echoStage{}, GuardReject, 0)
	inner.Process(nan)          // rejected by the inner guard directly
	inner.Process([]float64{1}) // accepted
	if got := inner.Health().Rejected; got != 1 {
		t.Fatalf("inner guard rejected = %d, want 1", got)
	}

	outer := NewGuard(inner, GuardReject, 0)
	outer.Process(nan) // rejected by the outer guard; inner never sees it
	s := outer.Health()
	if got := s.Rejected; got != 2 {
		t.Fatalf("nested guard Health().Rejected = %d, want 2 (outer must add to the inner count, not overwrite it)", got)
	}

	// Same contract for the clamp counter.
	ci := NewGuard(&echoStage{}, GuardClamp, 0)
	ci.Process(nan) // clamped by the inner guard
	co := NewGuard(ci, GuardClamp, 0)
	co.Process(nan) // clamped by the outer guard; inner receives the repaired copy
	if got := co.Health().Clamped; got != 2 {
		t.Fatalf("nested guard Health().Clamped = %d, want 2", got)
	}
}

package core

import (
	"testing"
	"testing/quick"

	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

// buildDetector constructs a small calibrated detector for property
// tests; every knob is derived from the quick-check seed.
func buildDetector(seed uint64, window int) (*Detector, *rng.Rand, error) {
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 6, Ridge: 1e-2}, rng.New(seed))
	if err != nil {
		return nil, nil, err
	}
	r := rng.New(seed + 7777)
	xs, labels := trainSet(r, 200, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		return nil, nil, err
	}
	cfg := DefaultConfig(window)
	cfg.NRecon = 120
	d, err := New(m, cfg)
	if err != nil {
		return nil, nil, err
	}
	if err := d.Calibrate(xs, labels); err != nil {
		return nil, nil, err
	}
	return d, r, nil
}

// Property: the detector is a deterministic function of its inputs — two
// identically-built detectors fed the same stream agree on every output.
func TestPropDeterministic(t *testing.T) {
	f := func(seed uint64, wRaw uint8) bool {
		w := int(wRaw%40) + 5
		a, ra, err := buildDetector(seed, w)
		if err != nil {
			return false
		}
		b, _, err := buildDetector(seed, w)
		if err != nil {
			return false
		}
		for i := 0; i < 400; i++ {
			shift := 0.0
			if i > 200 {
				shift = 4
			}
			x := sample(ra, i%testClasses, shift)
			res1 := a.Process(x)
			res2 := b.Process(x)
			if res1 != res2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: phase transitions are legal — Monitoring↔Checking freely,
// Checking→Reconstructing only via a DriftDetected sample, and
// Reconstructing ends only by returning to Monitoring.
func TestPropLegalPhaseTransitions(t *testing.T) {
	f := func(seed uint64) bool {
		d, r, err := buildDetector(seed, 20)
		if err != nil {
			return false
		}
		prev := Monitoring
		for i := 0; i < 1500; i++ {
			shift := 0.0
			if i > 500 {
				shift = 4
			}
			res := d.Process(sample(r, i%testClasses, shift))
			switch {
			case prev == Monitoring && res.Phase == Reconstructing && !res.DriftDetected:
				return false // cannot jump to reconstruction without a detection
			case prev == Checking && res.Phase == Reconstructing && !res.DriftDetected:
				return false
			case res.DriftDetected && res.Phase != Reconstructing:
				return false // a detection must enter reconstruction
			}
			prev = res.Phase
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-class counts never decrease while monitoring a single
// window and stay ≥ 1 always, and centroids never contain NaNs.
func TestPropStateSanity(t *testing.T) {
	f := func(seed uint64) bool {
		d, r, err := buildDetector(seed, 15)
		if err != nil {
			return false
		}
		for i := 0; i < 1000; i++ {
			shift := 0.0
			if i > 400 {
				shift = 4
			}
			d.Process(sample(r, i%testClasses, shift))
			for c := 0; c < testClasses; c++ {
				if d.num[c] < 1 {
					return false
				}
				for _, v := range d.cor[c] {
					if v != v { // NaN
						return false
					}
				}
				for _, v := range d.trainCor[c] {
					if v != v {
						return false
					}
				}
			}
			if d.thetaDrift != d.thetaDrift || d.thetaError != d.thetaError {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: memory is O(1) — the detector's audited footprint never
// changes over the stream, drifts and reconstructions included.
func TestPropConstantMemory(t *testing.T) {
	f := func(seed uint64) bool {
		d, r, err := buildDetector(seed, 10)
		if err != nil {
			return false
		}
		base := d.MemoryBytes()
		for i := 0; i < 1200; i++ {
			shift := 0.0
			if i > 300 {
				shift = 5
			}
			d.Process(sample(r, i%testClasses, shift))
			if d.MemoryBytes() != base {
				return false
			}
		}
		// At least one reconstruction must have happened for the property
		// to have covered the interesting path.
		return d.Reconstructions() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: drift events are strictly increasing sample indices, and
// SamplesSeen counts every Process call.
func TestPropEventBookkeeping(t *testing.T) {
	f := func(seed uint64) bool {
		d, r, err := buildDetector(seed, 10)
		if err != nil {
			return false
		}
		const n = 1500
		for i := 0; i < n; i++ {
			shift := 0.0
			if i > 300 && i < 900 {
				shift = 5
			}
			d.Process(sample(r, i%testClasses, shift))
		}
		if d.SamplesSeen() != n {
			return false
		}
		ev := d.DriftEvents()
		for i := 1; i < len(ev); i++ {
			if ev[i] <= ev[i-1] {
				return false
			}
		}
		for _, e := range ev {
			if e < 0 || e >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Property: TriggerReconstruction from any monitoring state consumes
// exactly NRecon samples before returning to monitoring.
func TestPropReconstructionLength(t *testing.T) {
	f := func(seed uint64, warmRaw uint8) bool {
		d, r, err := buildDetector(seed, 10)
		if err != nil {
			return false
		}
		warm := int(warmRaw % 100)
		for i := 0; i < warm; i++ {
			d.Process(sample(r, i%testClasses, 0))
		}
		d.Process(sample(r, 0, 0))
		d.TriggerReconstruction()
		n := 0
		for d.PhaseNow() == Reconstructing {
			d.Process(sample(r, n%testClasses, 0))
			n++
			if n > d.Config().NRecon+1 {
				return false
			}
		}
		return n == d.Config().NRecon
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

package core

import (
	"math"

	"edgedrift/internal/health"
	"edgedrift/internal/mat"
)

// Streaming is the composable per-sample stage contract every drift
// detector in this repository satisfies: the proposed detector, the
// multi-window ensemble, the batch baselines (QuantTree, SPLL) and the
// error-rate baselines (DDM, ADWIN). A stage consumes one sample,
// returns one Result, and can always report its retained memory and a
// structured health snapshot. Stages compose by wrapping: the ingestion
// Guard below is a stage around a stage, and the fleet layer schedules
// any Streaming without knowing which detector is inside.
//
// Implementations are single-threaded by contract — one goroutine per
// stage instance. Concurrency is provided above this interface (the
// fleet's sharded registry), never inside it.
type Streaming interface {
	// Process consumes one sample and returns the per-sample outcome.
	Process(x []float64) Result
	// MemoryBytes audits the stage's retained state.
	MemoryBytes() int
	// Health returns the stage's structured health snapshot.
	Health() health.Snapshot
}

// BatchStreaming is the optional capability a stage can expose when it
// can consume several samples per call: ProcessBatch appends one Result
// per sample of xs to dst, in order, and returns the extended slice.
//
// The contract is strict equivalence: the results — and every piece of
// observable stage state after the call — must be identical to calling
// Process once per sample. Batching is a memory-access-pattern
// optimisation (scoring N samples through shared weight matrices as
// GEMMs instead of N matvec pairs), never a semantic change; a stage
// that cannot currently guarantee equivalence (mid-reconstruction,
// op-counting armed, timing armed) must fall back to its per-sample
// path internally. Callers therefore never need to check state before
// batching — only whether the capability exists at all.
type BatchStreaming interface {
	Streaming
	ProcessBatch(dst []Result, xs [][]float64) []Result
}

// phaser is the optional capability a stage can expose so a wrapping
// Guard can stamp the current phase onto replayed rejection Results.
type phaser interface {
	PhaseNow() Phase
}

// Guard is the ingestion-guard stage: it applies a GuardPolicy to every
// sample before the wrapped stage can see it, so a non-finite feature —
// a flaky sensor over a months-long deployment — never reaches model or
// centroid state. It used to be inline code in Detector.Process; as a
// wrapping stage the same policy protects any Streaming implementation.
//
// Under GuardReject the wrapped stage's accepted-sample stream behaves
// exactly as if the bad samples had never existed — same drift events,
// same state, bit for bit; the rejected sample returns the last
// accepted Result with Rejected set. GuardClamp repairs the sample into
// a scratch buffer (NaN → 0, ±Inf → ±limit) and processes the repaired
// copy; the caller's slice is never written. GuardPanic panics, for
// pipelines where a bad sample indicates an upstream bug.
type Guard struct {
	policy GuardPolicy
	limit  float64
	inner  Streaming
	phase  func() Phase // optional, from the inner stage's PhaseNow

	rejected uint64
	clamped  uint64
	lastGood Result
	clampBuf []float64
}

// NewGuard wraps inner with the given policy. A zero limit defaults to
// 1e12, matching Config.ClampLimit's default. NewGuard panics on an
// unknown policy — a programmer error, caught at construction rather
// than on the first bad sample.
func NewGuard(inner Streaming, policy GuardPolicy, limit float64) *Guard {
	if policy < GuardReject || policy > GuardPanic {
		panic("core: unknown guard policy")
	}
	if limit == 0 {
		limit = 1e12
	}
	g := &Guard{policy: policy, limit: limit, inner: inner}
	if p, ok := inner.(phaser); ok {
		g.phase = p.PhaseNow
	}
	return g
}

// Policy returns the guard's policy.
func (g *Guard) Policy() GuardPolicy { return g.policy }

// Inner returns the wrapped stage.
func (g *Guard) Inner() Streaming { return g.inner }

// Rejected returns how many samples the guard refused (GuardReject).
func (g *Guard) Rejected() uint64 { return g.rejected }

// Clamped returns how many samples the guard repaired (GuardClamp).
func (g *Guard) Clamped() uint64 { return g.clamped }

// Process applies the guard policy, then forwards to the wrapped stage.
// The finiteness scan is integer-pipeline work (one subtract and
// compare per feature) and is deliberately not op-counted: the paper's
// Table 5/6 cost model tracks floating-point arithmetic on the data
// path.
func (g *Guard) Process(x []float64) Result {
	if !mat.AllFinite(x) {
		switch g.policy {
		case GuardPanic:
			panic("core: non-finite feature in sample (GuardPanic policy)")
		case GuardClamp:
			g.clamped++
			x = g.clampInto(x)
		default: // GuardReject
			g.rejected++
			res := g.lastGood
			res.Rejected = true
			res.DriftDetected = false
			if g.phase != nil {
				res.Phase = g.phase()
			}
			return res
		}
	}
	res := g.inner.Process(x)
	g.lastGood = res
	return res
}

// ProcessBatch forwards runs of finite samples to the wrapped stage's
// batch path and handles non-finite samples one at a time through the
// normal policy machinery. Equivalent to calling Process per sample:
// the guard's only per-sample state is lastGood, which only the last
// result of a forwarded run can be observed as.
func (g *Guard) ProcessBatch(dst []Result, xs [][]float64) []Result {
	bs, ok := g.inner.(BatchStreaming)
	if !ok {
		for _, x := range xs {
			dst = append(dst, g.Process(x))
		}
		return dst
	}
	i := 0
	for i < len(xs) {
		run := 0
		for i+run < len(xs) && mat.AllFinite(xs[i+run]) {
			run++
		}
		if run == 0 {
			dst = append(dst, g.Process(xs[i]))
			i++
			continue
		}
		base := len(dst)
		dst = bs.ProcessBatch(dst, xs[i:i+run])
		if len(dst) > base {
			g.lastGood = dst[len(dst)-1]
		}
		i += run
	}
	return dst
}

// clampInto copies x into the guard's scratch buffer with non-finite
// features repaired: NaN → 0, ±Inf → ±limit. Finite features pass
// through untouched, however large — the guard repairs corruption, it
// does not editorialise about outliers.
func (g *Guard) clampInto(x []float64) []float64 {
	if len(g.clampBuf) < len(x) {
		g.clampBuf = make([]float64, len(x))
	}
	buf := g.clampBuf[:len(x)]
	for i, v := range x {
		switch {
		case math.IsNaN(v):
			v = 0
		case math.IsInf(v, 1):
			v = g.limit
		case math.IsInf(v, -1):
			v = -g.limit
		}
		buf[i] = v
	}
	return buf
}

// MemoryBytes audits the wrapped stage plus the guard's own scratch.
func (g *Guard) MemoryBytes() int {
	return g.inner.MemoryBytes() + 8*len(g.clampBuf) + 4*8
}

// Health returns the wrapped stage's snapshot with the guard's own
// ingestion counters added in. Added, not assigned: stages compose by
// wrapping, and a guard around a guard must accumulate both layers'
// counts instead of clobbering whatever the inner stage reported.
func (g *Guard) Health() health.Snapshot {
	s := g.inner.Health()
	s.Rejected += g.rejected
	s.Clamped += g.clamped
	return s
}

// PhaseNow forwards the wrapped stage's phase, keeping the capability
// visible through arbitrarily deep stage nesting.
func (g *Guard) PhaseNow() Phase {
	if g.phase != nil {
		return g.phase()
	}
	return g.lastGood.Phase
}

var _ Streaming = (*Guard)(nil)

package core

import (
	"testing"

	"edgedrift/internal/model"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

const (
	testDims    = 4
	testClasses = 2
)

// sample draws one point of class c, optionally shifted (the drifted
// concept moves every class by +shift per dimension).
func sample(r *rng.Rand, c int, shift float64) []float64 {
	x := make([]float64, testDims)
	base := float64(c) * 5
	for j := range x {
		x[j] = r.Normal(base+shift, 0.3)
	}
	return x
}

// trainSet draws n alternating-class samples.
func trainSet(r *rng.Rand, n int, shift float64) ([][]float64, []int) {
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := range xs {
		labels[i] = i % testClasses
		xs[i] = sample(r, labels[i], shift)
	}
	return xs, labels
}

// newCalibrated builds a trained, calibrated detector over the two-blob
// concept.
func newCalibrated(t *testing.T, seed uint64, cfg Config) (*Detector, *rng.Rand) {
	t.Helper()
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed + 1000)
	xs, labels := trainSet(r, 400, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		t.Fatal(err)
	}
	d, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		t.Fatal(err)
	}
	return d, r
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	m, _ := model.New(model.Config{Classes: 2, Inputs: 2, Hidden: 2}, rng.New(1))
	if _, err := New(m, Config{Window: 0}); err == nil {
		t.Fatal("expected error for zero window")
	}
	if _, err := New(m, Config{Window: 10, NSearch: 200, NRecon: 100}); err == nil {
		t.Fatal("expected error for NSearch > NRecon")
	}
	if _, err := New(m, Config{Window: 10, EWMAGamma: 2}); err == nil {
		t.Fatal("expected error for bad gamma")
	}
	d, err := New(m, DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	c := d.Config()
	if c.ZDrift != 1 || c.ZError != 1 || c.NRecon != 500 || c.NSearch != 6 || c.NUpdate != 125 {
		t.Fatalf("defaults = %+v", c)
	}
	if !c.ResetModelOnDrift {
		t.Fatal("DefaultConfig should reset model on drift")
	}
}

func TestCalibrateComputesCentroidsAndThresholds(t *testing.T) {
	d, _ := newCalibrated(t, 2, DefaultConfig(50))
	c0 := d.TrainedCentroid(0)
	c1 := d.TrainedCentroid(1)
	for j := 0; j < testDims; j++ {
		if c0[j] < -0.2 || c0[j] > 0.2 {
			t.Fatalf("class-0 centroid %v not near 0", c0)
		}
		if c1[j] < 4.8 || c1[j] > 5.2 {
			t.Fatalf("class-1 centroid %v not near 5", c1)
		}
	}
	if d.ThetaDrift() <= 0 || d.ThetaError() <= 0 {
		t.Fatalf("thresholds: drift=%v error=%v", d.ThetaDrift(), d.ThetaError())
	}
	// Recent centroids start equal to trained ones.
	r0 := d.RecentCentroid(0)
	for j := range r0 {
		if r0[j] != c0[j] {
			t.Fatal("recent centroid must start at trained centroid")
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	m, _ := model.New(model.Config{Classes: 2, Inputs: 2, Hidden: 2}, rng.New(3))
	d, _ := New(m, DefaultConfig(10))
	if err := d.Calibrate(nil, nil); err == nil {
		t.Fatal("expected error for empty calibration")
	}
	if err := d.Calibrate([][]float64{{1}}, []int{0}); err == nil {
		t.Fatal("expected dimension error")
	}
	if err := d.Calibrate([][]float64{{1, 2}}, []int{5}); err == nil {
		t.Fatal("expected label range error")
	}
	// A class with no samples is an error (its centroid is undefined).
	if err := d.Calibrate([][]float64{{1, 2}, {1, 2}}, []int{0, 0}); err == nil {
		t.Fatal("expected empty-class error")
	}
}

func TestProcessPanicsBeforeCalibrate(t *testing.T) {
	m, _ := model.New(model.Config{Classes: 2, Inputs: 2, Hidden: 2}, rng.New(4))
	d, _ := New(m, DefaultConfig(10))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Process([]float64{1, 2})
}

func TestProcessPanicsOnBadDims(t *testing.T) {
	d, _ := newCalibrated(t, 5, DefaultConfig(50))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Process([]float64{1})
}

func TestStationaryStreamNoDrift(t *testing.T) {
	d, r := newCalibrated(t, 6, DefaultConfig(50))
	correct := 0
	const n = 2000
	for i := 0; i < n; i++ {
		c := i % testClasses
		res := d.Process(sample(r, c, 0))
		if res.DriftDetected {
			t.Fatalf("false drift detection at sample %d", i)
		}
		if res.Label == c {
			correct++
		}
	}
	if len(d.DriftEvents()) != 0 {
		t.Fatalf("drift events on stationary stream: %v", d.DriftEvents())
	}
	if acc := float64(correct) / n; acc < 0.97 {
		t.Fatalf("stationary accuracy %v", acc)
	}
	if d.SamplesSeen() != n {
		t.Fatalf("SamplesSeen = %d", d.SamplesSeen())
	}
}

func TestSuddenDriftDetectedAndRecovered(t *testing.T) {
	cfg := DefaultConfig(50)
	d, r := newCalibrated(t, 7, cfg)
	// Pre-drift phase.
	for i := 0; i < 300; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	if len(d.DriftEvents()) != 0 {
		t.Fatal("premature drift")
	}
	// Sudden drift: both classes shift by +5 per dimension.
	detectedAt := -1
	for i := 0; i < 3000; i++ {
		res := d.Process(sample(r, i%testClasses, 5))
		if res.DriftDetected && detectedAt == -1 {
			detectedAt = i
		}
	}
	if detectedAt == -1 {
		t.Fatal("drift never detected")
	}
	if detectedAt > 500 {
		t.Fatalf("drift detected only after %d samples", detectedAt)
	}
	if d.Reconstructions() < 1 {
		t.Fatal("reconstruction did not complete")
	}
	if d.PhaseNow() == Reconstructing {
		t.Fatalf("phase = %v after recovery", d.PhaseNow())
	}
	// After recovery, the rebuilt model separates the drifted classes.
	agree, scored := 0, 0
	const probe = 400
	firstLabelOfClass := [2]int{-1, -1}
	for i := 0; i < probe; i++ {
		c := i % testClasses
		res := d.Process(sample(r, c, 5))
		if res.Phase == Reconstructing {
			continue
		}
		scored++
		// Labels after reconstruction are cluster ids, not original
		// labels; check consistency instead of identity.
		if firstLabelOfClass[c] == -1 {
			firstLabelOfClass[c] = res.Label
		}
		if res.Label == firstLabelOfClass[c] {
			agree++
		}
	}
	if scored < probe/2 {
		t.Fatalf("only %d/%d probe samples scored outside reconstruction", scored, probe)
	}
	if frac := float64(agree) / float64(scored); frac < 0.95 {
		t.Fatalf("post-recovery label consistency %v (%d/%d)", frac, agree, scored)
	}
	if firstLabelOfClass[0] == firstLabelOfClass[1] {
		t.Fatal("rebuilt model collapsed both classes to one label")
	}
}

func TestLargerWindowDetectsLater(t *testing.T) {
	delayFor := func(w int) int {
		cfg := DefaultConfig(w)
		d, r := newCalibrated(t, 8, cfg)
		for i := 0; i < 200; i++ {
			d.Process(sample(r, i%testClasses, 0))
		}
		for i := 0; i < 5000; i++ {
			if res := d.Process(sample(r, i%testClasses, 5)); res.DriftDetected {
				return i
			}
		}
		t.Fatalf("window %d never detected", w)
		return -1
	}
	small, large := delayFor(20), delayFor(200)
	if small >= large {
		t.Fatalf("delay(W=20)=%d should be < delay(W=200)=%d", small, large)
	}
}

func TestCheckGatingOnThetaError(t *testing.T) {
	d, r := newCalibrated(t, 9, DefaultConfig(50))
	// In-distribution sample with a score below θ_error must not open a
	// window; find one by probing.
	for i := 0; i < 50; i++ {
		x := sample(r, 0, 0)
		_, score := d.Model().Predict(x)
		if score < d.ThetaError() {
			res := d.Process(x)
			if res.Phase != Monitoring {
				t.Fatalf("low-score sample opened a window (score %v < θ %v)", score, d.ThetaError())
			}
			break
		}
	}
	// A wildly anomalous sample must open one.
	weird := make([]float64, testDims)
	for j := range weird {
		weird[j] = 50
	}
	res := d.Process(weird)
	if res.Phase != Checking {
		t.Fatalf("anomalous sample did not open a window, phase %v", res.Phase)
	}
}

func TestAlwaysCheckOpensWindowImmediately(t *testing.T) {
	cfg := DefaultConfig(10)
	cfg.AlwaysCheck = true
	d, r := newCalibrated(t, 10, cfg)
	res := d.Process(sample(r, 0, 0))
	if res.Phase != Checking {
		t.Fatalf("AlwaysCheck: phase %v after first sample", res.Phase)
	}
}

func TestResetWindowStateRestoresCentroids(t *testing.T) {
	cfg := DefaultConfig(5)
	cfg.AlwaysCheck = true
	cfg.ResetWindowState = true
	// A huge manual threshold so windows never fire.
	cfg.DriftThreshold = 1e9
	d, r := newCalibrated(t, 11, cfg)
	before := d.RecentCentroid(0)
	// Run a full window of slightly offset data, then one more sample to
	// confirm state was restored at the close.
	for i := 0; i < 5; i++ {
		d.Process(sample(r, 0, 1))
	}
	after := d.RecentCentroid(0)
	for j := range before {
		if before[j] != after[j] {
			t.Fatalf("window close did not restore centroid: %v vs %v", before, after)
		}
	}
}

func TestEWMAUpdateMode(t *testing.T) {
	cfg := DefaultConfig(30)
	cfg.Update = EWMA
	cfg.EWMAGamma = 0.2
	d, r := newCalibrated(t, 12, cfg)
	for i := 0; i < 200; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	// EWMA recent centroids should adapt quickly to a shift.
	detected := false
	for i := 0; i < 2000 && !detected; i++ {
		detected = d.Process(sample(r, i%testClasses, 5)).DriftDetected
	}
	if !detected {
		t.Fatal("EWMA mode never detected the drift")
	}
}

func TestDriftEventsAreCopies(t *testing.T) {
	d, r := newCalibrated(t, 13, DefaultConfig(20))
	for i := 0; i < 100; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	ev := d.DriftEvents()
	if len(ev) != 0 {
		t.Fatal("unexpected events")
	}
	ev = append(ev, 42)
	if len(d.DriftEvents()) != 0 {
		t.Fatal("DriftEvents leaked internal slice")
	}
}

func TestStageOpsAccumulate(t *testing.T) {
	d, r := newCalibrated(t, 14, DefaultConfig(20))
	var ops opcount.Counter
	d.SetOps(&ops)
	for i := 0; i < 50; i++ {
		d.Process(sample(r, i%testClasses, 0))
	}
	pred, n := d.StageOps(StageLabelPrediction)
	if n != 50 {
		t.Fatalf("label-prediction stage ran %d times, want 50", n)
	}
	if pred.MulAdd == 0 || pred.Exp == 0 {
		t.Fatalf("label-prediction ops empty: %+v", pred)
	}
	// Force a drift so reconstruction stages run.
	for i := 0; i < 3000; i++ {
		d.Process(sample(r, i%testClasses, 6))
		if d.Reconstructions() > 0 {
			break
		}
	}
	if d.Reconstructions() == 0 {
		t.Fatal("no reconstruction happened")
	}
	for _, s := range []Stage{StageCoordInit, StageCoordUpdate, StageRetrainNoPred, StageRetrainWithPred} {
		if _, n := d.StageOps(s); n == 0 {
			t.Fatalf("stage %v never ran", s)
		}
	}
}

func TestStringers(t *testing.T) {
	if L1.String() != "l1" || L2.String() != "l2" {
		t.Fatal("DistanceKind strings")
	}
	if RunningMean.String() != "running-mean" || EWMA.String() != "ewma" {
		t.Fatal("CentroidUpdate strings")
	}
	if Monitoring.String() != "monitoring" || Checking.String() != "checking" || Reconstructing.String() != "reconstructing" {
		t.Fatal("Phase strings")
	}
	if Phase(9).String() == "" || Stage(9).String() == "" {
		t.Fatal("unknown enum strings")
	}
	want := []string{
		"label prediction",
		"distance computation",
		"model retraining without label prediction",
		"model retraining with label prediction",
		"label coordinates initialization",
		"label coordinates update",
	}
	for i, s := range Stages() {
		if s.String() != want[i] {
			t.Fatalf("stage %d = %q, want %q", i, s, want[i])
		}
	}
}

func TestLabelsByKMeans(t *testing.T) {
	r := rng.New(15)
	xs, truth := trainSet(r, 200, 0)
	labels := LabelsByKMeans(xs, testClasses, rng.New(16))
	if len(labels) != len(xs) {
		t.Fatalf("labels length %d", len(labels))
	}
	// Clustering must be consistent with the true partition up to label
	// permutation.
	perm := map[int]int{}
	agree := 0
	for i, l := range labels {
		if want, ok := perm[l]; ok {
			if want == truth[i] {
				agree++
			}
		} else {
			perm[l] = truth[i]
			agree++
		}
	}
	if float64(agree)/float64(len(xs)) < 0.98 {
		t.Fatalf("k-means labelling agreement %v", float64(agree)/float64(len(xs)))
	}
}

func TestL2DistanceMode(t *testing.T) {
	cfg := DefaultConfig(30)
	cfg.Distance = L2
	d, r := newCalibrated(t, 17, cfg)
	for i := 0; i < 100; i++ {
		if d.Process(sample(r, i%testClasses, 0)).DriftDetected {
			t.Fatal("false positive in L2 mode")
		}
	}
	detected := false
	for i := 0; i < 3000 && !detected; i++ {
		detected = d.Process(sample(r, i%testClasses, 5)).DriftDetected
	}
	if !detected {
		t.Fatal("L2 mode never detected drift")
	}
}

// BenchmarkProcessMonitoring measures the steady-state per-sample cost of
// the full pipeline (prediction + gate) in the NSL-KDD configuration.
func BenchmarkProcessMonitoring(b *testing.B) {
	m, err := model.New(model.Config{Classes: 2, Inputs: 38, Hidden: 22, Ridge: 1e-2}, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	xs := make([][]float64, 400)
	labels := make([]int, 400)
	for i := range xs {
		x := make([]float64, 38)
		r.FillNorm(x, float64(i%2)*3, 0.3)
		xs[i] = x
		labels[i] = i % 2
	}
	if err := m.InitSequential(xs, labels); err != nil {
		b.Fatal(err)
	}
	d, err := New(m, DefaultConfig(100))
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Process(xs[i%len(xs)])
	}
}

package core

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

// driftStream draws nPre samples of the trained concept followed by
// nPost samples shifted off it, alternating classes like trainSet.
func driftStream(r *rng.Rand, nPre, nPost int, shift float64) [][]float64 {
	xs := make([][]float64, 0, nPre+nPost)
	for i := 0; i < nPre; i++ {
		xs = append(xs, sample(r, i%testClasses, 0))
	}
	for i := 0; i < nPost; i++ {
		xs = append(xs, sample(r, i%testClasses, shift))
	}
	return xs
}

// poisonEvery returns a copy of xs with a NaN or +Inf feature planted in
// every stride-th sample, plus the clean subset with those samples
// removed — the stream "as if the bad samples had never existed".
func poisonEvery(xs [][]float64, stride int) (poisoned, filtered [][]float64) {
	for i, x := range xs {
		if i%stride == stride-1 {
			bad := append([]float64(nil), x...)
			if i%(2*stride) == stride-1 {
				bad[i%len(bad)] = math.NaN()
			} else {
				bad[0] = math.Inf(1)
			}
			poisoned = append(poisoned, bad)
			continue
		}
		poisoned = append(poisoned, x)
		filtered = append(filtered, x)
	}
	return poisoned, filtered
}

func guardCfg(g GuardPolicy) Config {
	cfg := DefaultConfig(50)
	cfg.NRecon = 300
	cfg.Guard = g
	return cfg
}

// TestGuardRejectBitIdentical is the PR's poison acceptance test: under
// the default GuardReject, a stream interleaved with NaN/Inf samples
// must produce bit-identical drift events and final centroids to the
// same stream with those samples removed, and no Result may carry a
// non-finite field.
func TestGuardRejectBitIdentical(t *testing.T) {
	dirty, r := newCalibrated(t, 7, guardCfg(GuardReject))
	clean, _ := newCalibrated(t, 7, guardCfg(GuardReject))
	stream := driftStream(r, 800, 800, 4)
	poisoned, filtered := poisonEvery(stream, 37)

	for _, x := range poisoned {
		res := dirty.Process(x)
		if math.IsNaN(res.Score) || math.IsInf(res.Score, 0) || math.IsNaN(res.Dist) || math.IsInf(res.Dist, 0) {
			t.Fatalf("non-finite Result field: %+v", res)
		}
	}
	for _, x := range filtered {
		clean.Process(x)
	}

	if got, want := dirty.Rejected(), uint64(len(poisoned)-len(filtered)); got != want {
		t.Fatalf("Rejected = %d, want %d", got, want)
	}
	if dirty.SamplesSeen() != clean.SamplesSeen() {
		t.Fatalf("samplesSeen %d vs %d", dirty.SamplesSeen(), clean.SamplesSeen())
	}

	de, ce := dirty.DriftEvents(), clean.DriftEvents()
	if len(de) == 0 {
		t.Fatal("no drift detected on the drifting stream")
	}
	if len(de) != len(ce) {
		t.Fatalf("drift events %v vs %v", de, ce)
	}
	for i := range de {
		if de[i] != ce[i] {
			t.Fatalf("drift event %d: index %d vs %d", i, de[i], ce[i])
		}
	}
	for c := 0; c < testClasses; c++ {
		dc, cc := dirty.RecentCentroid(c), clean.RecentCentroid(c)
		for i := range dc {
			if dc[i] != cc[i] {
				t.Fatalf("class %d centroid[%d]: %v vs %v (not bit-identical)", c, i, dc[i], cc[i])
			}
		}
	}
}

func TestGuardRejectReplaysLastGood(t *testing.T) {
	d, r := newCalibrated(t, 3, guardCfg(GuardReject))
	last := d.Process(sample(r, 0, 0))
	bad := []float64{math.NaN(), 1, 2, 3}
	res := d.Process(bad)
	if !res.Rejected {
		t.Fatal("Rejected flag not set")
	}
	if res.DriftDetected {
		t.Fatal("rejection reported a drift")
	}
	if res.Label != last.Label || res.Score != last.Score {
		t.Fatalf("rejection did not replay last good result: %+v vs %+v", res, last)
	}
	if d.SamplesSeen() != 1 {
		t.Fatalf("rejected sample counted: samplesSeen = %d", d.SamplesSeen())
	}
}

func TestGuardClampRepairsWithoutMutatingCaller(t *testing.T) {
	d, _ := newCalibrated(t, 4, guardCfg(GuardClamp))
	bad := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2}
	orig := append([]float64(nil), bad...)
	res := d.Process(bad)
	if res.Rejected {
		t.Fatal("clamp policy must not reject")
	}
	if d.Clamped() != 1 {
		t.Fatalf("Clamped = %d, want 1", d.Clamped())
	}
	for i := range bad {
		if !(math.IsNaN(bad[i]) && math.IsNaN(orig[i])) && bad[i] != orig[i] {
			t.Fatalf("caller slice mutated at %d: %v vs %v", i, bad[i], orig[i])
		}
	}
	if math.IsNaN(res.Score) || math.IsInf(res.Score, 0) {
		t.Fatalf("clamped sample produced non-finite score: %+v", res)
	}
}

func TestGuardPanicPanics(t *testing.T) {
	d, _ := newCalibrated(t, 5, guardCfg(GuardPanic))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic under GuardPanic")
		}
	}()
	d.Process([]float64{math.NaN(), 0, 0, 0})
}

func TestCalibrateRejectsNonFinite(t *testing.T) {
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1006)
	xs, labels := trainSet(r, 100, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		t.Fatal(err)
	}
	d, err := New(m, DefaultConfig(50))
	if err != nil {
		t.Fatal(err)
	}
	xs[10] = []float64{1, math.Inf(-1), 2, 3}
	if err := d.Calibrate(xs, labels); err == nil {
		t.Fatal("Calibrate accepted a non-finite training sample")
	}
}

// TestResultDistOnlyDuringCheck locks the satellite fix: Result.Dist
// must be 0 on samples no check window consumed, instead of replaying
// the last window's stale distance forever.
func TestResultDistOnlyDuringCheck(t *testing.T) {
	d, r := newCalibrated(t, 8, guardCfg(GuardReject))
	stream := driftStream(r, 1200, 400, 4)
	sawStaleWindow := false // a closed window left d.dist non-zero
	for _, x := range stream {
		before := d.PhaseNow()
		res := d.Process(x)
		if before == Reconstructing {
			continue
		}
		consumed := before == Checking || res.Phase == Checking || res.DriftDetected
		if !consumed {
			if res.Dist != 0 {
				t.Fatalf("monitoring sample reported stale Dist %v", res.Dist)
			}
			if d.dist != 0 {
				sawStaleWindow = true // the old bug would have leaked d.dist here
			}
		}
	}
	if !sawStaleWindow {
		t.Skip("stream never exercised the stale-dist condition")
	}
}

func TestDetectorHealthSnapshot(t *testing.T) {
	d, r := newCalibrated(t, 9, guardCfg(GuardReject))
	stream := driftStream(r, 600, 600, 4)
	for i, x := range stream {
		if i%50 == 13 {
			d.Process([]float64{math.NaN(), 0, 0, 0})
		}
		d.Process(x)
	}
	h := d.Health()
	if h.SamplesSeen != len(stream) {
		t.Fatalf("SamplesSeen = %d, want %d", h.SamplesSeen, len(stream))
	}
	if h.Rejected == 0 {
		t.Fatal("Rejected counter empty despite poisoned samples")
	}
	if !h.PFinite || !h.Healthy() {
		t.Fatalf("healthy detector reported unhealthy: %+v", h)
	}
	if h.ScoreSamples == 0 || math.IsNaN(h.ScoreMean) {
		t.Fatalf("score stats missing: %+v", h)
	}
	if h.Phase == "" {
		t.Fatal("Phase missing from snapshot")
	}
	if h.String() == "" {
		t.Fatal("empty health summary string")
	}
}

func savedState(t *testing.T) ([]byte, *model.Multi) {
	t.Helper()
	d, _ := newCalibrated(t, 11, guardCfg(GuardReject))
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), d.Model()
}

func TestLoadStateRejectsEveryTruncation(t *testing.T) {
	full, m := savedState(t)
	for n := 0; n < len(full); n++ {
		if _, err := LoadState(bytes.NewReader(full[:n]), m); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFormat", n, len(full), err)
		}
	}
}

func TestLoadStateRejectsEveryFlippedByte(t *testing.T) {
	full, m := savedState(t)
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x20
		if _, err := LoadState(bytes.NewReader(mut), m); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flipped byte %d/%d: err = %v, want ErrBadFormat", i, len(full), err)
		}
	}
}

// legacyState rewinds a v3 artifact to the older layouts: strip the two
// pinned-threshold floats that v3 appended to the float block (they sit
// right after the 6-byte magic, 13 u32s and 6 f64s), then either keep
// the recomputed CRC footer (v2) or drop it (v1).
func legacyState(t *testing.T, full []byte, version byte) []byte {
	t.Helper()
	if full[5] != '3' {
		t.Fatalf("unexpected version byte %q", full[5])
	}
	const pinsAt = 6 + 13*4 + 6*8
	body := append([]byte(nil), full[:pinsAt]...)
	body = append(body, full[pinsAt+16:len(full)-4]...)
	body[5] = version
	if version == '1' {
		return body
	}
	var buf bytes.Buffer
	cw := ckpt.NewWriter(&buf)
	if _, err := cw.Write(body); err != nil {
		t.Fatal(err)
	}
	if err := cw.WriteFooter(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadStateLegacyVersions(t *testing.T) {
	full, m := savedState(t)
	for _, version := range []byte{'1', '2'} {
		d, err := LoadState(bytes.NewReader(legacyState(t, full, version)), m)
		if err != nil {
			t.Fatalf("v%c state failed to load: %v", version, err)
		}
		if !d.calibrated {
			t.Fatalf("v%c: loaded detector not calibrated", version)
		}
		if d.scoreBins == nil {
			t.Fatalf("v%c: loaded detector missing score histogram", version)
		}
		if d.cfg.ErrorThreshold != 0 || d.cfg.DriftThreshold != 0 {
			t.Fatalf("v%c: legacy load must leave threshold pins zero", version)
		}
	}
}

func FuzzLoadState(f *testing.F) {
	m, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(12))
	if err != nil {
		f.Fatal(err)
	}
	r := rng.New(1012)
	xs, labels := trainSet(r, 200, 0)
	if err := m.InitSequential(xs, labels); err != nil {
		f.Fatal(err)
	}
	d, err := New(m, DefaultConfig(50))
	if err != nil {
		f.Fatal(err)
	}
	if err := d.Calibrate(xs, labels); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		f.Fatal(err)
	}
	full := buf.Bytes()
	f.Add(full)
	f.Add(full[:len(full)/2])
	f.Add([]byte("EDDET2"))
	f.Add([]byte("EDDET3"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m2, err := model.New(model.Config{Classes: testClasses, Inputs: testDims, Hidden: 8, Ridge: 1e-2}, rng.New(12))
		if err != nil {
			t.Fatal(err)
		}
		got, err := LoadState(bytes.NewReader(data), m2)
		if err == nil && got == nil {
			t.Fatal("nil detector with nil error")
		}
	})
}

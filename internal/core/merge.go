package core

// Merger is the optional capability a stage exposes when its trained
// model state is a first-class, mergeable value — the seam the fleet's
// cooperative policies (warm recovery, anti-entropy) are built on. It
// follows the same capability-interface pattern as BatchStreaming:
// callers type-assert, and a stage that cannot merge (the Q16.16
// detect-only port, the batch baselines) simply does not implement it.
type Merger interface {
	// MergeFingerprint returns the stage's merge-compatibility
	// fingerprint. Two stages can exchange merge state iff their
	// fingerprints match; the fleet indexes it so incompatible peers are
	// rejected before any state is shipped.
	MergeFingerprint() uint64
	// ExportMergeState serialises the stage's trained model state into a
	// self-describing blob a compatible peer's MergeSeed can consume,
	// locally or across shards.
	ExportMergeState() ([]byte, error)
	// MergeSeed replaces the stage's model state with the closed-form
	// combination of the given peer state blobs. Incompatible state is
	// rejected (wrapping oselm.ErrMergeIncompatible) without touching the
	// stage. It does not alter detector phase or centroid state — policy
	// layers decide when seeding is safe (e.g. at the start of a
	// reconstruction).
	MergeSeed(states [][]byte) error
}

// MergeFingerprint returns the fingerprint of the detector's model.
func (d *Detector) MergeFingerprint() uint64 { return d.model.Fingerprint() }

// ExportMergeState serialises the detector's trained model state.
func (d *Detector) ExportMergeState() ([]byte, error) { return d.model.ExportMergeState() }

// MergeSeed replaces the detector's model state with the closed-form
// combination of the peer blobs (see model.Multi.MergeStates). The
// detector's own drift state machine is untouched: seeding mid-
// reconstruction warm-starts the rebuild the same way ResetModelOnDrift
// cold-starts it.
func (d *Detector) MergeSeed(states [][]byte) error {
	if err := d.model.MergeStates(states); err != nil {
		return err
	}
	d.merges++
	return nil
}

var _ Merger = (*Detector)(nil)

// AsMerger discovers the Merger capability anywhere in a wrapped stage
// chain, seeing through Guard/Instrumented seams the way NewInstrumented
// discovers thresholds. It returns false for stages that genuinely
// cannot merge (the Q16.16 detect-only port, baseline detectors).
func AsMerger(s Streaming) (Merger, bool) {
	for s != nil {
		if m, ok := s.(Merger); ok {
			return m, true
		}
		w, ok := s.(innerer)
		if !ok {
			return nil, false
		}
		s = w.Inner()
	}
	return nil, false
}

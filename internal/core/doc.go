// Package core implements the paper's contribution: a fully sequential,
// centroid-based concept-drift detection method coupled to the
// multi-instance OS-ELM discriminative model, plus the drift-triggered
// model reconstruction procedure.
//
// The detector (Algorithm 1) keeps, per class label, the centroid of the
// training data ("trained centroid") and a sequentially updated centroid
// of recent test data ("recent centroid"). When the discriminative model's
// anomaly score exceeds θ_error, a window of W samples opens; within it
// each sample moves the recent centroid of its predicted label by the
// running-mean rule, and the summed L1 distance between recent and trained
// centroids is compared against θ_drift (Eq. 1: μ + z·σ of the training
// samples' distances to their class centroid) when the window closes.
//
// A detection switches the detector into reconstruction mode
// (Algorithm 2): the first N_search samples re-seed label coordinates by a
// k-means++-like spread maximisation (Algorithm 3), the first N_update
// samples refine them by sequential k-means (Algorithm 4), the first N/2
// samples retrain the (reset) model with nearest-coordinate labels, and
// the remainder up to N retrain it with its own predicted labels. All of
// it is strictly per-sample computation over O(C·D + H²) state — nothing
// is buffered — which is the property that fits the method in the
// 264 kB of a Raspberry Pi Pico.
//
// Deviations from the paper's pseudocode, chosen for well-definedness and
// noted inline:
//
//   - Algorithm 1 line 5 would skip label prediction entirely while a
//     check window is open, leaving the label c of line 12 stale. §3.2 of
//     the paper states centroids are updated "based on each test sample
//     and its predicted label", so prediction stays active every sample
//     (the accuracy traces of Figure 4 also require a per-sample label).
//   - Algorithm 2 guards lines 7–9 (count < N/2) and 10–12 (count < N)
//     are treated as exclusive ranges; taken literally a sample in the
//     first half would be trained twice. Table 6 times the two retraining
//     modes as alternatives, which the exclusive reading matches.
package core

package eval

import (
	"math"
	"strconv"
	"testing"

	"edgedrift/internal/oselm"
)

// TestSetPrecisionValidation pins the trainable set: the Q16.16 backend
// cannot run the experiments (it is inference-only) and unknown values
// are rejected.
func TestSetPrecisionValidation(t *testing.T) {
	if err := SetPrecision(oselm.Fixed16); err == nil {
		t.Fatal("SetPrecision accepted Fixed16")
	}
	if err := SetPrecision(oselm.Float32); err != nil {
		t.Fatal(err)
	}
	if got := ModelPrecision(); got != oselm.Float32 {
		t.Fatalf("ModelPrecision = %v after SetPrecision(Float32)", got)
	}
	if err := SetPrecision(oselm.Float64); err != nil {
		t.Fatal(err)
	}
}

// cellOrNaN parses a table cell, treating the "-" no-value marker as NaN.
func cellOrNaN(t *testing.T, table *Table, row, col int) float64 {
	t.Helper()
	cell := table.Rows[row][col]
	if cell == "-" {
		return math.NaN()
	}
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not numeric: %v", row, col, cell, err)
	}
	return v
}

// TestTable2Float32Parity reproduces Table 2 on both trainable backends
// and checks every cell of the float32 run against the float64 golden
// within the documented tolerance (DESIGN.md §11): accuracies within one
// percentage point, detection delays within 10% of the window (±25
// samples at W=250 and below), and detected/undetected verdicts
// identical. The float64 run itself is pinned bit-identical to the seed
// by the root golden-stream test; this test bounds how far single
// precision moves the paper's headline numbers.
func TestTable2Float32Parity(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Table-2 reproductions")
	}
	if ModelPrecision() != oselm.Float64 {
		t.Fatalf("precondition: experiments default to Float64, got %v", ModelPrecision())
	}
	golden := Table2(1).Tables[0]
	if err := SetPrecision(oselm.Float32); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := SetPrecision(oselm.Float64); err != nil {
			t.Fatal(err)
		}
	})
	got := Table2(1).Tables[0]

	if len(got.Rows) != len(golden.Rows) {
		t.Fatalf("f32 table has %d rows, f64 has %d", len(got.Rows), len(golden.Rows))
	}
	const accTolPts = 1.0 // percentage points
	for r := range golden.Rows {
		name := golden.Rows[r][0]
		if got.Rows[r][0] != name {
			t.Fatalf("row %d: method %q vs %q", r, got.Rows[r][0], name)
		}
		a64 := cellOrNaN(t, golden, r, 1)
		a32 := cellOrNaN(t, got, r, 1)
		if math.Abs(a64-a32) > accTolPts {
			t.Errorf("%s: accuracy %.2f%% (f32) vs %.2f%% (f64), tolerance %.1f points",
				name, a32, a64, accTolPts)
		}
		d64 := cellOrNaN(t, golden, r, 2)
		d32 := cellOrNaN(t, got, r, 2)
		if math.IsNaN(d64) != math.IsNaN(d32) {
			t.Errorf("%s: detection verdict flipped: delay %v (f64) vs %v (f32)", name, d64, d32)
			continue
		}
		if math.IsNaN(d64) {
			continue // undetected on both backends
		}
		delayTol := math.Max(25, 0.10*d64)
		if math.Abs(d64-d32) > delayTol {
			t.Errorf("%s: delay %v (f32) vs %v (f64), tolerance %v", name, d32, d64, delayTol)
		}
	}
}

package eval

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"name", "value"},
		Notes:   []string{"a caveat"},
	}
	tab.AddRow("alpha", 1.5)
	tab.AddRow("b", "x")
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "alpha") {
		t.Fatalf("render missing content:\n%s", s)
	}
	if !strings.Contains(s, "note: a caveat") {
		t.Fatal("note missing")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	// title, header, rule, 2 rows, note.
	if len(lines) != 6 {
		t.Fatalf("line count %d:\n%s", len(lines), s)
	}
	// Columns align: "alpha" starts each data row at column 0 with padding.
	if !strings.HasPrefix(lines[3], "alpha") || !strings.HasPrefix(lines[4], "b    ") {
		t.Fatalf("alignment broken:\n%s", s)
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:     "1.5",
		1.50001: "1.5",
		2:       "2",
		-0.0001: "0",
		96.84:   "96.84",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Fatalf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("plain", `quote"and,comma`)
	csv := tab.CSV()
	want := "a,b\nplain,\"quote\"\"and,comma\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestSeriesCSV(t *testing.T) {
	s := SeriesCSV("x", []Series{
		{Name: "one", X: []float64{0, 1}, Y: []float64{10, 11}},
		{Name: "two", X: []float64{0}, Y: []float64{20}},
	})
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if lines[0] != "x,one,two" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "0,10,20" {
		t.Fatalf("row 1 = %q", lines[1])
	}
	if lines[2] != "1,11," {
		t.Fatalf("row 2 = %q", lines[2])
	}
}

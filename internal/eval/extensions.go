package eval

import (
	"fmt"
	"math"

	"edgedrift/internal/core"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/detectors/adwin"
	"edgedrift/internal/detectors/ddm"
	"edgedrift/internal/detectors/quanttree"
	"edgedrift/internal/device"
	"edgedrift/internal/fixed"
	"edgedrift/internal/model"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// RegistryExtensions returns experiments beyond the paper's evaluation:
// the error-rate detector comparison its related work motivates but does
// not run, and a seed-robustness sweep of the headline NSL-KDD numbers.
func RegistryExtensions() []Experiment {
	return []Experiment{
		{ID: "ext-errorrate", Title: "Extension: error-rate detectors (DDM, ADWIN) need labels the edge does not have", Run: ExtensionErrorRate},
		{ID: "ext-seeds", Title: "Extension: NSL-KDD surrogate robustness across model seeds", Run: ExtensionSeeds},
		{ID: "ext-fixedpoint", Title: "Extension: Q16.16 fixed-point deployment vs float on the Pico model", Run: ExtensionFixedPoint},
		{ID: "ext-incremental", Title: "Extension: incremental drift (the Figure 1 type the paper does not evaluate)", Run: ExtensionIncremental},
		{ID: "ext-realdrift", Title: "Extension: real drift without virtual drift (SEA) — the distribution detectors' blind spot", Run: ExtensionRealDrift},
		{ID: "ext-health", Title: "Extension: non-finite input robustness — guard policies on a poisoned stream", Run: ExtensionHealth},
		{ID: "ext-coop", Title: "Extension: cooperative warm recovery vs per-stream cold rebuild after drift", Run: ExtensionCoop},
		{ID: "ext-scenarios", Title: "Extension: label-delay matrix — hybrid supervised/unsupervised detection and the reoccurring-drift model pool", Run: ExtensionScenarios},
	}
}

// ExtensionErrorRate runs DDM and ADWIN on the NSL-KDD surrogate in two
// regimes: the oracle regime where ground-truth labels grade every
// prediction (unavailable on the paper's target devices), and the
// realistic self-supervised regime where the error signal is the model's
// own anomaly-score threshold crossings. The proposed method, which
// never needs labels, is shown for reference.
//
// Expected shape: with oracle labels the error-rate detectors are fast
// and accurate — §2.2.2's reason they are popular — but with the
// self-supervised signal their detection degrades, while the proposed
// distribution-based method is unaffected because it never consumed
// labels in the first place.
func ExtensionErrorRate(seed uint64) *Outcome {
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	cfg := RunConfig{DriftAt: ds.DriftAt}

	t := &Table{
		Title:   "Extension: error-rate drift detectors on NSL-KDD (drift at 8333)",
		Columns: []string{"detector", "error signal", "accuracy (%)", "delay", "detections"},
		Notes: []string{
			"oracle = ground-truth labels grade each prediction (unavailable on unlabelled edge streams)",
			"self-supervised = error proxy is the anomaly score exceeding the calibrated θ_error",
		},
	}

	type signal struct {
		name   string
		oracle bool
	}
	for _, sig := range []signal{{"oracle labels", true}, {"self-supervised", false}} {
		res := runErrorRateDetector(ds, cfg, seed, sig.oracle, proposedNReconNSL, ddm.New(ddm.Config{}))
		res.Name = "DDM"
		t.AddRow(res.Name, sig.name, pct(res.Accuracy), delayCell(res.Delay), len(res.Detections))

		ad, err := adwin.New(adwin.Config{CheckEvery: 8})
		if err != nil {
			panic(err)
		}
		res = runErrorRateDetector(ds, cfg, seed, sig.oracle, proposedNReconNSL, ad)
		res.Name = "ADWIN"
		t.AddRow(res.Name, sig.name, pct(res.Accuracy), delayCell(res.Delay), len(res.Detections))
	}

	det, err := proposedNSL(ds, 100, seed)
	if err != nil {
		panic(err)
	}
	prop := RunProposed(det, ds.TestX, ds.TestY, cfg)
	t.AddRow("proposed (W=100)", "none (unsupervised)", pct(prop.Accuracy), delayCell(prop.Delay), len(prop.Detections))
	return &Outcome{Tables: []*Table{t}}
}

// runErrorRateDetector wires an error-bit detector to the shared
// OS-ELM model: each prediction produces an error bit (oracle: wrong
// label; self-supervised: anomalous score), detections trigger the same
// sequential reconstruction the proposed method uses. The detector is
// any core.Streaming over a one-feature error stream (x[0] = 1 on a
// graded error) — DDM and ADWIN both are, with no adapter code here.
func runErrorRateDetector(ds *nslkdd.Dataset, cfg RunConfig, seed uint64, oracle bool, nrecon int, errDet core.Streaming) *RunResult {
	m, err := model.New(model.Config{Classes: 2, Inputs: len(ds.TrainX[0]), Hidden: nslHidden, Ridge: 1e-2, Precision: modelPrecision}, rng.New(seed))
	if err != nil {
		panic(err)
	}
	thetaErr, err := trainPrequential(m, ds.TrainX, ds.TrainY)
	if err != nil {
		panic(err)
	}
	// Reconstruction is driven through a detector that never self-fires;
	// the error-rate detector pulls the trigger instead.
	dcfg := core.DefaultConfig(100)
	dcfg.Precision = modelPrecision
	dcfg.NRecon = nrecon
	dcfg.NSearch = 30
	dcfg.NUpdate = nrecon / 3
	dcfg.ErrorThreshold = 1e18
	dcfg.DriftThreshold = 1e18
	det, err := core.New(m, dcfg)
	if err != nil {
		panic(err)
	}
	if err := det.Calibrate(ds.TrainX, ds.TrainY); err != nil {
		panic(err)
	}

	res := &RunResult{Name: "error-rate"}
	c := cfg.withDefaults()
	acc := newAccTracker(c, m.Classes(), maxLabel(ds.TestY)+1)
	errSample := make([]float64, 1)
	for i, x := range ds.TestX {
		r := det.Process(x)
		reconstructing := r.Phase == core.Reconstructing
		mapped := acc.mapper.Map(r.Label)
		acc.observe(i, r.Label, ds.TestY[i])
		if reconstructing {
			continue // the detector is replaying samples into the rebuild
		}
		errSample[0] = 0
		if oracle && mapped != ds.TestY[i] || !oracle && r.Score >= thetaErr {
			errSample[0] = 1
		}
		if errDet.Process(errSample).DriftDetected {
			res.Detections = append(res.Detections, i)
			det.TriggerReconstruction()
			acc.mapper.Reset()
			if rs, ok := errDet.(Resettable); ok {
				rs.Reset() // fresh window for the new concept
			}
		}
	}
	res.Delay = computeDelay(res.Detections, c.DriftAt)
	acc.fill(res)
	return res
}

// ExtensionSeeds reruns the Table 2 headline (baseline vs proposed) over
// several model seeds on the fixed surrogate stream, quantifying how
// much of the comparison is seed luck. The dataset itself stays fixed —
// like the paper's single real stream — and only the random projections
// change.
func ExtensionSeeds(seed uint64) *Outcome {
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	cfg := RunConfig{DriftAt: ds.DriftAt}
	t := &Table{
		Title:   "Extension: model-seed robustness on the fixed NSL-KDD surrogate",
		Columns: []string{"model seed", "baseline acc (%)", "proposed acc (%)", "proposed delay"},
		Notes: []string{
			"the static baseline's post-drift accuracy depends on how the random projection reacts off-manifold; the adaptive methods are far more stable",
		},
	}
	for s := seed; s < seed+5; s++ {
		mBase, err := nslModel(ds, 1, s)
		if err != nil {
			panic(err)
		}
		base := RunStatic(mBase, ds.TestX, ds.TestY, cfg)
		det, err := proposedNSL(ds, 100, s)
		if err != nil {
			panic(err)
		}
		prop := RunProposed(det, ds.TestX, ds.TestY, cfg)
		t.AddRow(s, pct(base.Accuracy), pct(prop.Accuracy), delayCell(prop.Delay))
	}
	return &Outcome{Tables: []*Table{t}}
}

// ExtensionFixedPoint compares the float pipeline against the Q16.16
// fixed-point deployment (internal/fixed) on the cooling-fan stream:
// detection agreement, per-prediction Pico latency, and retained memory.
// This is the quantised-MCU port the paper's Pico demonstration implies
// but does not detail.
func ExtensionFixedPoint(seed uint64) *Outcome {
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)
	stream := gen.TestSudden()

	det, err := proposedFan(trainX, trainY, 50, seed)
	if err != nil {
		panic(err)
	}
	mon := fixed.QuantizeDetector(det)

	var fops, qops opcount.Counter
	det.SetOps(&fops)
	mon.SetOps(&qops)

	fDelay, qDelay := -1, -1
	for i, x := range stream.X {
		if det.Process(x).DriftDetected && fDelay < 0 && i >= stream.DriftAt {
			fDelay = i - stream.DriftAt
		}
		if mon.Process(fixed.QuantizeVec(x)).DriftDetected && qDelay < 0 && i >= stream.DriftAt {
			qDelay = i - stream.DriftAt
		}
	}

	pico := device.PiPico()
	picoFx := device.PiPicoFixed()
	// Per-prediction cost: label-prediction stage for the float path; the
	// quantised monitor's whole-stream ops divided by samples approximates
	// the same (its detection overhead is minor).
	predOps, n := det.StageOps(core.StageLabelPrediction)
	floatMs := 0.0
	if n > 0 {
		floatMs = pico.Millis(predOps) / float64(n)
	}
	fixedMs := picoFx.Millis(qops) / float64(len(stream.X))

	t := &Table{
		Title:   "Extension: float vs Q16.16 fixed-point deployment on the Pico model",
		Columns: []string{"pipeline", "detection delay", "Pico ms per sample", "retained memory (kB)", "fits 264 kB"},
		Notes: []string{
			"float path: interpreted double-precision software floats (Table 6 calibration)",
			"fixed path: compiled Q16.16 integer MACs + sigmoid LUT; detection deferred to a host after the flag",
		},
	}
	t.AddRow("float64 (full method)", delayCell(fDelay), floatMs, device.KB(det.MemoryBytes()), fits(pico, det.MemoryBytes()))
	t.AddRow("Q16.16 (detect-only)", delayCell(qDelay), fixedMs, device.KB(mon.MemoryBytes()), fits(picoFx, mon.MemoryBytes()))
	return &Outcome{Tables: []*Table{t}}
}

// ExtensionIncremental evaluates the proposed method on the one Figure 1
// drift type the paper's evaluation skips: incremental drift, where the
// distribution itself morphs continuously from old to new. Window size
// interacts differently here — there is no single change point, so the
// detection sample is reported relative to the morph's start, and the
// re-derived thresholds after the first reconstruction determine whether
// the detector keeps re-firing while the morph continues.
func ExtensionIncremental(seed uint64) *Outcome {
	pre := synth.NewGaussian([][]float64{{0, 0, 0, 0}, {5, 5, 5, 5}}, 0.35)
	post := synth.ShiftedGaussian(pre, 6)
	r := rng.New(seed)
	trainX, trainY := synth.TrainingSet(pre, 500, r)
	st, err := synth.Generate(pre, post, 8000, synth.Spec{Kind: synth.Incremental, Start: 1500, End: 6500}, r)
	if err != nil {
		panic(err)
	}
	t := &Table{
		Title:   "Extension: incremental drift (morph over samples 1500-6500)",
		Columns: []string{"window", "first detection (after morph start)", "detections", "reconstructions", "accuracy (%)"},
		Notes: []string{
			"an incremental drift has no single change point: slow morphs can require several reconstructions as the concept keeps moving",
		},
	}
	for _, w := range []int{50, 150, 400} {
		m, err := model.New(model.Config{Classes: 2, Inputs: 4, Hidden: 8, Ridge: 1e-2, Precision: modelPrecision}, rng.New(seed))
		if err != nil {
			panic(err)
		}
		thetaErr, err := trainPrequential(m, trainX, trainY)
		if err != nil {
			panic(err)
		}
		cfg := core.DefaultConfig(w)
		cfg.Precision = modelPrecision
		cfg.NRecon = 400
		cfg.ErrorThreshold = thetaErr
		det, err := core.New(m, cfg)
		if err != nil {
			panic(err)
		}
		if err := det.Calibrate(trainX, trainY); err != nil {
			panic(err)
		}
		res := RunProposed(det, st.X, st.Labels, RunConfig{DriftAt: 1500})
		t.AddRow(fmt.Sprintf("W=%d", w), delayCell(res.Delay), len(res.Detections), res.Reconstructions, pct(res.Accuracy))
	}
	return &Outcome{Tables: []*Table{t}}
}

// ExtensionHealth measures what the ingestion guard buys on a stream
// where a flaky sensor intermittently emits NaN and ±Inf features — the
// failure mode that, unguarded, poisons the centroid running means after
// a single sample and silently disables detection for the rest of the
// deployment. The clean-stream row is the reference; under GuardReject
// the poisoned run refuses the bad samples and recovers the reference
// behaviour on the accepted substream, while GuardClamp trades exactness
// for using every (repaired) sample.
func ExtensionHealth(seed uint64) *Outcome {
	pre := synth.NewGaussian([][]float64{{0, 0, 0, 0}, {5, 5, 5, 5}}, 0.35)
	post := synth.ShiftedGaussian(pre, 6)
	r := rng.New(seed)
	trainX, trainY := synth.TrainingSet(pre, 500, r)
	st, err := synth.Generate(pre, post, 6000, synth.Spec{Kind: synth.Sudden, Start: 2500}, r)
	if err != nil {
		panic(err)
	}

	// Poisoned copy: ~1.6% of samples get a NaN or +Inf feature, the
	// signature of a dropped sensor read or an overflowed fixed-point
	// pre-processing step.
	poison := make([][]float64, len(st.X))
	bad := 0
	for i, x := range st.X {
		px := append([]float64(nil), x...)
		switch {
		case i%83 == 7:
			px[i%len(px)] = math.NaN()
			bad++
		case i%211 == 13:
			px[0] = math.Inf(1)
			bad++
		}
		poison[i] = px
	}

	mkDet := func(g core.GuardPolicy) *core.Detector {
		m, err := model.New(model.Config{Classes: 2, Inputs: 4, Hidden: 8, Ridge: 1e-2, Precision: modelPrecision}, rng.New(seed))
		if err != nil {
			panic(err)
		}
		thetaErr, err := trainPrequential(m, trainX, trainY)
		if err != nil {
			panic(err)
		}
		cfg := core.DefaultConfig(100)
		cfg.Precision = modelPrecision
		cfg.NRecon = 400
		cfg.ErrorThreshold = thetaErr
		cfg.Guard = g
		det, err := core.New(m, cfg)
		if err != nil {
			panic(err)
		}
		if err := det.Calibrate(trainX, trainY); err != nil {
			panic(err)
		}
		return det
	}

	t := &Table{
		Title:   fmt.Sprintf("Extension: non-finite input robustness (%d of %d samples poisoned, drift at 2500)", bad, len(st.X)),
		Columns: []string{"stream", "guard", "accuracy (%)", "delay", "detections", "rejected", "clamped", "P finite"},
		Notes: []string{
			"reject (default) refuses poisoned samples before they touch any state: the accepted substream behaves exactly like the clean stream",
			"clamp repairs NaN→0 and ±Inf→±limit and processes the repaired copy, trading exactness for using every sample",
			"unguarded, a single NaN feature propagates into the centroid running means and every subsequent threshold comparison is false: the detector looks alive but can never fire again",
		},
	}
	for _, rw := range []struct {
		stream string
		xs     [][]float64
		g      core.GuardPolicy
	}{
		{"clean", st.X, core.GuardReject},
		{"poisoned", poison, core.GuardReject},
		{"poisoned", poison, core.GuardClamp},
	} {
		det := mkDet(rw.g)
		res := RunProposed(det, rw.xs, st.Labels, RunConfig{DriftAt: 2500})
		h := res.Health
		t.AddRow(rw.stream, rw.g.String(), pct(res.Accuracy), delayCell(res.Delay),
			len(res.Detections), h.Rejected, h.Clamped, yesNo(h.PFinite))
	}
	return &Outcome{Tables: []*Table{t}}
}

// ExtensionRealDrift demonstrates the blind spot every distribution-based
// detector shares — including the paper's method, QuantTree and SPLL: on
// the SEA-concepts stream the drift changes only the labelling function
// (real drift) while P(x) stays exactly uniform (no virtual drift).
// Distribution detectors see literally nothing; an error-rate detector
// with labels (DDM) sees it immediately. This quantifies the scope
// restriction implicit in the paper's §2.2 taxonomy.
func ExtensionRealDrift(seed uint64) *Outcome {
	r := rng.New(seed)
	pre := &synth.SEA{Theta: 8}
	post := &synth.SEA{Theta: 13}
	trainX, trainY := synth.TrainingSet(pre, 600, r)
	st, err := synth.Generate(pre, post, 6000, synth.Spec{Kind: synth.Sudden, Start: 2000}, r)
	if err != nil {
		panic(err)
	}

	t := &Table{
		Title:   "Extension: real drift without virtual drift (SEA concepts, θ 8 → 13 at sample 2000)",
		Columns: []string{"detector", "needs labels", "detected", "delay", "accuracy (%)"},
		Notes: []string{
			"the SEA drift changes only the labelling function; P(x) is uniform throughout, so no distribution detector can see it",
		},
	}

	mkModel := func() *model.Multi {
		m, err := model.New(model.Config{Classes: 2, Inputs: 3, Hidden: 10, Ridge: 1e-2, Precision: modelPrecision}, rng.New(seed))
		if err != nil {
			panic(err)
		}
		return m
	}

	// Proposed method.
	m := mkModel()
	thetaErr, err := trainPrequential(m, trainX, trainY)
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig(100)
	cfg.Precision = modelPrecision
	cfg.NRecon = 400
	cfg.ErrorThreshold = thetaErr
	det, err := core.New(m, cfg)
	if err != nil {
		panic(err)
	}
	if err := det.Calibrate(trainX, trainY); err != nil {
		panic(err)
	}
	prop := RunProposed(det, st.X, st.Labels, RunConfig{DriftAt: 2000})
	t.AddRow("proposed (W=100)", "no", yesNo(prop.Delay >= 0), delayCell(prop.Delay), pct(prop.Accuracy))

	// QuantTree.
	mQT := mkModel()
	if err := mQT.InitSequential(trainX, trainY); err != nil {
		panic(err)
	}
	qt, err := quanttree.New(trainX, quanttree.Config{Bins: 16, BatchSize: 200, CalibrationTrials: 500}, rng.New(seed+1))
	if err != nil {
		panic(err)
	}
	qres := RunBatch("Quant Tree", mQT, qt, st.X, st.Labels, RunConfig{DriftAt: 2000}, rng.New(seed+2))
	t.AddRow("Quant Tree", "no", yesNo(qres.Delay >= 0), delayCell(qres.Delay), pct(qres.Accuracy))

	// DDM with oracle labels, adaptation through the shared recon path.
	ds := &nslkdd.Dataset{TrainX: trainX, TrainY: trainY, TestX: st.X, TestY: st.Labels, DriftAt: 2000}
	dres := runErrorRateDetector(ds, RunConfig{DriftAt: 2000}, seed, true, 400, ddm.New(ddm.Config{}))
	t.AddRow("DDM (oracle labels)", "yes", yesNo(dres.Delay >= 0), delayCell(dres.Delay), pct(dres.Accuracy))
	t.Notes = append(t.Notes,
		fmt.Sprintf("DDM raised %d detection(s) in total (pre-drift false alarms included)", len(dres.Detections)))
	return &Outcome{Tables: []*Table{t}}
}

package eval

import (
	"strings"
	"testing"
)

// TestRunScenariosMatrix runs the full label-delay matrix once and
// checks the structural claims the extension makes: the pool restores
// on reoccurring drift and beats the cold rebuild, stays out of the way
// on sudden drift, and timely labels buy the hybrid earlier detection.
func TestRunScenariosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full cooling-fan matrix in -short mode")
	}
	m, err := RunScenarios(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 12 {
		t.Fatalf("matrix has %d cells, want 12", len(m.Cells))
	}
	cell := func(scenario, mode string, delay int, budget float64) *ScenarioCell {
		for i := range m.Cells {
			c := &m.Cells[i]
			if c.Scenario == scenario && c.Mode == mode && c.Delay == delay && c.Budget == budget {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s/%d/%v", scenario, mode, delay, budget)
		return nil
	}

	for _, scenario := range []string{"sudden", "reoccurring"} {
		for _, c := range m.Cells {
			if c.Scenario != scenario {
				continue
			}
			if c.DetectAt < 0 {
				t.Errorf("%s/%s never detected", c.Scenario, c.Mode)
			}
			if c.Mode != "hybrid" && c.LabelsObserved != 0 {
				t.Errorf("%s/%s observed %d labels without a supervised arm", c.Scenario, c.Mode, c.LabelsObserved)
			}
		}
	}

	// The tentpole acceptance claim: on reoccurring drift the pooled
	// restore beats the cold retrain on recovery delay.
	cold := cell("reoccurring", "unsupervised", 0, 0)
	pooled := cell("reoccurring", "pooled", 0, 0)
	if pooled.PoolHits < 1 || pooled.PoolRestores < 1 {
		t.Fatalf("reoccurring pooled: hits=%d restores=%d, want >= 1", pooled.PoolHits, pooled.PoolRestores)
	}
	if pooled.RecoverySamples < 0 ||
		(cold.RecoverySamples >= 0 && pooled.RecoverySamples >= cold.RecoverySamples) {
		t.Fatalf("pooled recovery %d not faster than cold %d on reoccurring drift",
			pooled.RecoverySamples, cold.RecoverySamples)
	}
	// On sudden drift the old concept never returns: the pool must not
	// restore, and the pooled arm must match the cold baseline.
	suddenPooled := cell("sudden", "pooled", 0, 0)
	suddenCold := cell("sudden", "unsupervised", 0, 0)
	if suddenPooled.PoolRestores != 0 {
		t.Fatalf("sudden pooled restored %d times, want 0", suddenPooled.PoolRestores)
	}
	if suddenPooled.DetectAt != suddenCold.DetectAt {
		t.Fatalf("pooled bystander diverged: detect %d vs %d", suddenPooled.DetectAt, suddenCold.DetectAt)
	}
	// Timely, complete labels must not detect later than the
	// unsupervised baseline (the supervised arm can only add alarms).
	hybrid := cell("sudden", "hybrid", 0, 1.0)
	if hybrid.DetectAt > suddenCold.DetectAt {
		t.Fatalf("hybrid with instant labels detected at %d, after unsupervised %d",
			hybrid.DetectAt, suddenCold.DetectAt)
	}
	if hybrid.LabelsObserved == 0 {
		t.Fatal("hybrid cell observed no labels")
	}
}

func TestScenariosOutcomeRendering(t *testing.T) {
	m := &ScenarioMatrix{
		Seed: 1, Window: 50, ProbeLen: 100, CheckEvery: 10, Budget: 2500, Margin: 1.25,
		Cells: []ScenarioCell{
			{Scenario: "reoccurring", Mode: "pooled", DetectAt: 156, DetectDelay: 36,
				RecoverySamples: 50, PoolHits: 1, PoolRestores: 1},
			{Scenario: "reoccurring", Mode: "hybrid", DelayKind: "fixed", Delay: 50, Budget: 0.25,
				DetectAt: 156, DetectDelay: 36, RecoverySamples: 200, LabelsObserved: 25},
		},
	}
	out := ScenariosOutcome(m)
	if len(out.Tables) != 1 || len(out.Tables[0].Rows) != 2 {
		t.Fatalf("outcome shape: %+v", out)
	}
	s := out.Tables[0].String()
	for _, want := range []string{"pooled", "hybrid", "1/1", "0.25"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

package eval

import (
	"fmt"

	"edgedrift/internal/core"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/device"
	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

// RegistryAblations returns the ablation experiments: benches for the
// design choices DESIGN.md calls out. They run on compact streams so a
// full sweep stays interactive.
func RegistryAblations() []Experiment {
	return []Experiment{
		{ID: "ablation-centroid", Title: "Ablation: running-mean vs EWMA recent centroids", Run: AblationCentroidUpdate},
		{ID: "ablation-distance", Title: "Ablation: L1 vs L2 centroid distance", Run: AblationDistance},
		{ID: "ablation-gate", Title: "Ablation: θ_error gating vs always-open windows", Run: AblationErrorGate},
		{ID: "ablation-reset", Title: "Ablation: model reset vs continued update at reconstruction", Run: AblationModelReset},
		{ID: "ablation-forgetting", Title: "Ablation: ONLAD forgetting-rate sweep", Run: AblationForgetting},
		{ID: "ablation-hidden", Title: "Ablation: hidden-layer width sweep", Run: AblationHidden},
		{ID: "ablation-multiwindow", Title: "Ablation: multi-window ensemble vs single window", Run: AblationMultiWindow},
	}
}

// LookupAny finds an experiment in the main or ablation registry.
func LookupAny(id string) (Experiment, bool) {
	if e, ok := Lookup(id); ok {
		return e, true
	}
	for _, e := range RegistryAblations() {
		if e.ID == id {
			return e, true
		}
	}
	for _, e := range RegistryExtensions() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ablationScenario is the compact 2-class sudden-drift stream every
// ablation shares: 4 dimensions, drift at sample 1,500 of 6,000.
type ablationScenario struct {
	trainX  [][]float64
	trainY  []int
	streamX [][]float64
	streamY []int
	driftAt int
}

func newAblationScenario(seed uint64) *ablationScenario {
	pre := synth.NewGaussian([][]float64{{0, 0, 0, 0}, {5, 5, 5, 5}}, 0.35)
	// A decisive shift: the post-drift mixture sits far from both trained
	// centroids, so every centroid-update policy sees the same geometry.
	post := synth.ShiftedGaussian(pre, 6)
	r := rng.New(seed)
	trainX, trainY := synth.TrainingSet(pre, 500, r)
	st, err := synth.Generate(pre, post, 6000, synth.Spec{Kind: synth.Sudden, Start: 1500}, r)
	if err != nil {
		panic(err) // static spec
	}
	return &ablationScenario{trainX: trainX, trainY: trainY, streamX: st.X, streamY: st.Labels, driftAt: 1500}
}

func (s *ablationScenario) model(seed uint64, forgetting float64, hidden int) *model.Multi {
	m, err := model.New(model.Config{Classes: 2, Inputs: 4, Hidden: hidden, Ridge: 1e-2, Forgetting: forgetting, Precision: modelPrecision}, rng.New(seed))
	if err != nil {
		panic(err)
	}
	if err := m.InitSequential(s.trainX, s.trainY); err != nil {
		panic(err)
	}
	return m
}

func (s *ablationScenario) detector(seed uint64, mutate func(*core.Config)) *core.Detector {
	m, err := model.New(model.Config{Classes: 2, Inputs: 4, Hidden: 8, Ridge: 1e-2, Precision: modelPrecision}, rng.New(seed))
	if err != nil {
		panic(err)
	}
	thetaErr, err := trainPrequential(m, s.trainX, s.trainY)
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig(50)
	cfg.Precision = modelPrecision
	cfg.NRecon = 400
	cfg.ErrorThreshold = thetaErr
	if mutate != nil {
		mutate(&cfg)
	}
	det, err2 := core.New(m, cfg)
	if err2 != nil {
		panic(err2)
	}
	if err2 := det.Calibrate(s.trainX, s.trainY); err2 != nil {
		panic(err2)
	}
	return det
}

func (s *ablationScenario) run(det *core.Detector) *RunResult {
	return RunProposed(det, s.streamX, s.streamY, RunConfig{DriftAt: s.driftAt})
}

// AblationCentroidUpdate compares the paper's running-mean recent
// centroids against the §3.2 remark's exponentially weighted variant.
func AblationCentroidUpdate(seed uint64) *Outcome {
	sc := newAblationScenario(seed)
	t := &Table{
		Title:   "Ablation: recent-centroid update rule (sudden drift at 1500)",
		Columns: []string{"update rule", "accuracy (%)", "delay", "reconstructions"},
	}
	for _, row := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"running mean (paper)", nil},
		{"EWMA γ=0.01", func(c *core.Config) { c.Update = core.EWMA; c.EWMAGamma = 0.01 }},
		{"EWMA γ=0.05", func(c *core.Config) { c.Update = core.EWMA; c.EWMAGamma = 0.05 }},
		{"EWMA γ=0.2", func(c *core.Config) { c.Update = core.EWMA; c.EWMAGamma = 0.2 }},
	} {
		res := sc.run(sc.detector(seed, row.mutate))
		t.AddRow(row.name, pct(res.Accuracy), delayCell(res.Delay), res.Reconstructions)
	}
	t.Notes = append(t.Notes, "EWMA weights recent samples more, trading false-positive risk for delay")
	return &Outcome{Tables: []*Table{t}}
}

// AblationDistance compares the paper's L1 metric against L2 throughout
// the detector (distances, thresholds, coordinate assignment).
func AblationDistance(seed uint64) *Outcome {
	sc := newAblationScenario(seed)
	t := &Table{
		Title:   "Ablation: centroid distance metric",
		Columns: []string{"metric", "accuracy (%)", "delay", "θ_drift"},
	}
	for _, row := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"L1 (paper)", nil},
		{"L2", func(c *core.Config) { c.Distance = core.L2 }},
	} {
		det := sc.detector(seed, row.mutate)
		res := sc.run(det)
		t.AddRow(row.name, pct(res.Accuracy), delayCell(res.Delay), det.ThetaDrift())
	}
	return &Outcome{Tables: []*Table{t}}
}

// AblationErrorGate measures what the θ_error check gate buys: windows
// open only on anomalous samples instead of continuously, cutting the
// distance-computation work.
func AblationErrorGate(seed uint64) *Outcome {
	sc := newAblationScenario(seed)
	pico := device.PiPico()
	t := &Table{
		Title:   "Ablation: θ_error gating of check windows",
		Columns: []string{"gating", "accuracy (%)", "delay", "distance-stage invocations", "Pico detection overhead (s)"},
	}
	for _, row := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"θ_error gate (paper)", nil},
		{"always check", func(c *core.Config) { c.AlwaysCheck = true }},
	} {
		det := sc.detector(seed, row.mutate)
		res := sc.run(det)
		distOps, n := det.StageOps(core.StageDistance)
		t.AddRow(row.name, pct(res.Accuracy), delayCell(res.Delay), n, pico.Seconds(distOps))
	}
	return &Outcome{Tables: []*Table{t}}
}

// AblationModelReset compares resetting each OS-ELM's learned state at
// reconstruction (the deployable default) against continuing sequential
// updates from the stale state.
func AblationModelReset(seed uint64) *Outcome {
	sc := newAblationScenario(seed)
	t := &Table{
		Title:   "Ablation: model state at reconstruction start",
		Columns: []string{"policy", "accuracy (%)", "post-drift accuracy (%)", "delay"},
	}
	for _, row := range []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"reset P, β (default)", nil},
		{"continue from stale state", func(c *core.Config) { c.ResetModelOnDrift = false }},
	} {
		res := sc.run(sc.detector(seed, row.mutate))
		t.AddRow(row.name, pct(res.Accuracy), pct(res.PostDrift), delayCell(res.Delay))
	}
	return &Outcome{Tables: []*Table{t}}
}

// AblationForgetting sweeps the ONLAD forgetting rate, reproducing the
// paper's §5.1 observation that tuning it is difficult: small rates
// collapse the instances, rates near 1 cannot follow the drift.
func AblationForgetting(seed uint64) *Outcome {
	sc := newAblationScenario(seed)
	t := &Table{
		Title:   "Ablation: ONLAD forgetting-rate sweep (passive approach)",
		Columns: []string{"forgetting α", "accuracy (%)", "pre-drift (%)", "post-drift (%)"},
	}
	for _, alpha := range []float64{0.9, 0.95, 0.97, 0.99, 0.999, 1.0} {
		m := sc.model(seed, alpha, 8)
		res := RunONLAD(m, sc.streamX, sc.streamY, RunConfig{DriftAt: sc.driftAt})
		t.AddRow(fmt.Sprintf("%.3g", alpha), pct(res.Accuracy), pct(res.PreDrift), pct(res.PostDrift))
	}
	t.Notes = append(t.Notes, "small α collapses the instances before the drift ever happens; on this easy 4-D stream large α tracks the drift, but the same rates fail on NSL-KDD (Table 2) — the tuning difficulty of §5.1")
	return &Outcome{Tables: []*Table{t}}
}

// AblationHidden sweeps the autoencoder hidden width: accuracy vs the
// modelled per-prediction cost on the Pico.
func AblationHidden(seed uint64) *Outcome {
	sc := newAblationScenario(seed)
	pico := device.PiPico()
	t := &Table{
		Title:   "Ablation: hidden-layer width",
		Columns: []string{"hidden units", "accuracy (%)", "delay", "Pico ms per prediction"},
	}
	for _, h := range []int{4, 8, 22, 64} {
		m := sc.model(seed, 1, h)
		cfg := core.DefaultConfig(50)
		cfg.Precision = modelPrecision
		cfg.NRecon = 400
		det, err := core.New(m, cfg)
		if err != nil {
			panic(err)
		}
		if err := det.Calibrate(sc.trainX, sc.trainY); err != nil {
			panic(err)
		}
		res := sc.run(det)
		predOps, n := det.StageOps(core.StageLabelPrediction)
		perPred := 0.0
		if n > 0 {
			perPred = pico.Millis(predOps) / float64(n)
		}
		t.AddRow(h, pct(res.Accuracy), delayCell(res.Delay), perPred)
	}
	return &Outcome{Tables: []*Table{t}}
}

// AblationMultiWindow pits the §5.2 future-work ensemble against single
// windows on the cooling-fan reoccurring stream, where no single window
// size handles both behaviours: short windows flag the 50-sample burst,
// long windows ignore it.
func AblationMultiWindow(seed uint64) *Outcome {
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)
	// Generate the streams in Table 3's order so the artifacts are
	// byte-identical across experiments (the generator is one sequential
	// random stream).
	sudden := gen.TestSudden()
	_ = gen.TestGradual()
	reoc := gen.TestReoccurring()

	t := &Table{
		Title:   "Ablation: multi-window ensemble (quorum 2 of {10, 150}) vs single windows",
		Columns: []string{"detector", "sudden delay", "reoccurring detected"},
	}
	single := func(w int) (string, string) {
		det, err := proposedFan(trainX, trainY, w, seed)
		if err != nil {
			panic(err)
		}
		rs := RunProposed(det, sudden.X, nil, RunConfig{DriftAt: sudden.DriftAt})
		det2, err := proposedFan(trainX, trainY, w, seed)
		if err != nil {
			panic(err)
		}
		rr := RunProposed(det2, reoc.X, nil, RunConfig{DriftAt: reoc.DriftAt})
		return delayCell(rs.Delay), yesNo(rr.Delay >= 0)
	}
	for _, w := range []int{10, 150} {
		d, det := single(w)
		t.AddRow(fmt.Sprintf("single W=%d", w), d, det)
	}

	ensemble := func(stream *coolingfan.Stream, quorum int) int {
		m, err := model.New(model.Config{Classes: 1, Inputs: coolingfan.Features, Hidden: fanHidden, Ridge: 1e-2, Precision: modelPrecision}, rng.New(seed))
		if err != nil {
			panic(err)
		}
		thetaErr, err := trainPrequential(m, trainX, trainY)
		if err != nil {
			panic(err)
		}
		mw, err := core.NewMultiWindow(m, []int{10, 150}, quorum, core.Config{
			NRecon: proposedNReconFan, NUpdate: 50, ResetModelOnDrift: true,
			ErrorThreshold: thetaErr,
		})
		if err != nil {
			panic(err)
		}
		if err := mw.Calibrate(trainX, trainY); err != nil {
			panic(err)
		}
		for i, x := range stream.X {
			if mw.Process(x).DriftDetected && i >= stream.DriftAt {
				return i - stream.DriftAt
			}
		}
		return -1
	}
	for _, q := range []int{1, 2} {
		sd := ensemble(sudden, q)
		rd := ensemble(reoc, q)
		t.AddRow(fmt.Sprintf("ensemble {10,150}, quorum %d", q), delayCell(sd), yesNo(rd >= 0))
	}
	t.Notes = append(t.Notes,
		"quorum 1 reacts at the fastest member's speed; quorum 2 inherits the long window's immunity to short-lived bursts — the ensemble exposes the trade-off the paper's §5.2 future work asks for")
	return &Outcome{Tables: []*Table{t}}
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

package eval

import (
	"fmt"
	"time"

	"edgedrift/internal/core"
	"edgedrift/internal/health"
	"edgedrift/internal/kmeans"
	"edgedrift/internal/model"
	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
	"edgedrift/internal/stats"
)

// MethodRun is one deferred, independent method evaluation: a named
// closure that builds its own model/detector and replays a stream.
type MethodRun struct {
	Name string
	Run  func() (*RunResult, error)
}

// RunSet evaluates independent method runs concurrently on the shared
// pool and returns the results in input order (pre-assigned slots, so
// concurrency never reorders a table). The first failing run aborts the
// set with its error, wrapped with the run's name.
func RunSet(runs ...MethodRun) ([]*RunResult, error) {
	out := make([]*RunResult, len(runs))
	p := NewPool(0)
	for i, mr := range runs {
		i, mr := i, mr
		p.Go(func() error {
			res, err := mr.Run()
			if err != nil {
				return fmt.Errorf("%s: %w", mr.Name, err)
			}
			out[i] = res
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		return nil, err
	}
	return out, nil
}

// RunConfig controls stream evaluation.
type RunConfig struct {
	// DriftAt is the ground-truth drift index (-1 when the stream has no
	// drift or it is unknown).
	DriftAt int
	// TraceWindow is the moving-accuracy window; 0 means 200.
	TraceWindow int
	// TraceEvery records a trace point every k samples; 0 means 50.
	TraceEvery int
}

func (c RunConfig) withDefaults() RunConfig {
	if c.TraceWindow == 0 {
		c.TraceWindow = 200
	}
	if c.TraceEvery == 0 {
		c.TraceEvery = 50
	}
	if c.DriftAt == 0 {
		c.DriftAt = -1
	}
	return c
}

// RunResult captures one method's behaviour over one stream.
type RunResult struct {
	// Name identifies the method.
	Name string
	// Accuracy is the overall fraction of correctly labelled samples
	// (NaN-free: 0 when the stream is unlabelled).
	Accuracy float64
	// PreDrift and PostDrift split Accuracy at the ground-truth drift.
	PreDrift, PostDrift float64
	// Trace is the windowed accuracy over time (Figure 4's curves).
	Trace Series
	// Detections are 0-based sample indices where drift was signalled.
	Detections []int
	// Delay is Detections' first entry at/after DriftAt minus DriftAt;
	// -1 when never detected (or unlabelled ground truth).
	Delay int
	// Ops tallies modelled floating-point work over the whole stream.
	Ops opcount.Counter
	// HostTime is the measured wall-clock time of the run.
	HostTime time.Duration
	// MemoryBytes is the method's retained state (model + detector).
	MemoryBytes int
	// DetectorBytes is the detector-only overhead (excluding the shared
	// discriminative model) — the quantity Table 4 compares.
	DetectorBytes int
	// Reconstructions counts completed model rebuilds.
	Reconstructions int
	// Health is the detector's end-of-stream health snapshot (nil only
	// for the detector-less passive baselines).
	Health *health.Snapshot
}

// accTracker accumulates overall/pre/post accuracy and the trace.
type accTracker struct {
	cfg     RunConfig
	mapper  *LabelMapper
	moving  *stats.MovingAccuracy
	correct int
	total   int
	preC    int
	preN    int
	trace   Series
}

func newAccTracker(cfg RunConfig, predClasses, trueClasses int) *accTracker {
	return &accTracker{
		cfg:    cfg,
		mapper: NewLabelMapper(predClasses, trueClasses),
		moving: stats.NewMovingAccuracy(cfg.TraceWindow),
	}
}

// observe scores a prediction against truth at stream index i.
func (a *accTracker) observe(i, pred, truth int) {
	mapped := a.mapper.Map(pred)
	correct := mapped == truth
	a.mapper.Observe(pred, truth)
	a.moving.Observe(correct)
	a.total++
	if correct {
		a.correct++
	}
	if a.cfg.DriftAt >= 0 && i < a.cfg.DriftAt {
		a.preN++
		if correct {
			a.preC++
		}
	}
	if i%a.cfg.TraceEvery == 0 {
		a.trace.X = append(a.trace.X, float64(i))
		a.trace.Y = append(a.trace.Y, a.moving.Value())
	}
}

func (a *accTracker) fill(res *RunResult) {
	if a.total > 0 {
		res.Accuracy = float64(a.correct) / float64(a.total)
	}
	if a.preN > 0 {
		res.PreDrift = float64(a.preC) / float64(a.preN)
	}
	if post := a.total - a.preN; post > 0 && a.cfg.DriftAt >= 0 {
		res.PostDrift = float64(a.correct-a.preC) / float64(post)
	}
	res.Trace = a.trace
}

// computeDelay resolves the detection delay for a result.
func computeDelay(detections []int, driftAt int) int {
	if driftAt < 0 {
		return -1
	}
	for _, d := range detections {
		if d >= driftAt {
			return d - driftAt
		}
	}
	return -1
}

// RunProposed evaluates the paper's method: the core detector drives both
// detection and adaptation. ys may be nil for unlabelled streams.
func RunProposed(det *core.Detector, xs [][]float64, ys []int, cfg RunConfig) *RunResult {
	c := cfg.withDefaults()
	res := &RunResult{Name: fmt.Sprintf("proposed (W=%d)", det.Config().Window)}
	var ops opcount.Counter
	det.SetOps(&ops)
	var acc *accTracker
	if ys != nil {
		acc = newAccTracker(c, det.Model().Classes(), maxLabel(ys)+1)
	}
	start := time.Now()
	for i, x := range xs {
		r := det.Process(x)
		if r.DriftDetected {
			res.Detections = append(res.Detections, i)
			if acc != nil {
				acc.mapper.Reset()
			}
		}
		if acc != nil {
			acc.observe(i, r.Label, ys[i])
		}
	}
	res.HostTime = time.Since(start)
	res.Ops = ops
	res.MemoryBytes = det.MemoryBytes()
	res.DetectorBytes = det.MemoryBytes() - det.Model().MemoryBytes()
	res.Reconstructions = det.Reconstructions()
	h := det.Health()
	res.Health = &h
	res.Delay = computeDelay(res.Detections, c.DriftAt)
	if acc != nil {
		acc.fill(res)
	}
	res.Trace.Name = res.Name
	return res
}

// RunStatic evaluates a model with no drift countermeasure at all (the
// paper's "Baseline"). The model only predicts.
func RunStatic(m *model.Multi, xs [][]float64, ys []int, cfg RunConfig) *RunResult {
	return runPassive("baseline (no detection)", m, xs, ys, cfg, false)
}

// RunONLAD evaluates the passive approach: the model (built with a
// forgetting factor) sequentially trains its closest instance on every
// sample, with no detector.
func RunONLAD(m *model.Multi, xs [][]float64, ys []int, cfg RunConfig) *RunResult {
	return runPassive("ONLAD (forgetting)", m, xs, ys, cfg, true)
}

func runPassive(name string, m *model.Multi, xs [][]float64, ys []int, cfg RunConfig, train bool) *RunResult {
	c := cfg.withDefaults()
	res := &RunResult{Name: name, Delay: -1}
	var ops opcount.Counter
	m.SetOps(&ops)
	var acc *accTracker
	if ys != nil {
		acc = newAccTracker(c, m.Classes(), maxLabel(ys)+1)
	}
	start := time.Now()
	for i, x := range xs {
		var label int
		if train {
			label, _ = m.TrainClosest(x)
		} else {
			label, _ = m.Predict(x)
		}
		if acc != nil {
			acc.observe(i, label, ys[i])
		}
	}
	res.HostTime = time.Since(start)
	res.Ops = ops
	res.MemoryBytes = m.MemoryBytes()
	res.DetectorBytes = 0
	if acc != nil {
		acc.fill(res)
	}
	res.Trace.Name = res.Name
	return res
}

// The capability interfaces below are what remains of the old
// per-detector adapter layer: every detector in this repository is a
// core.Streaming, and the harness discovers anything beyond that
// contract — batch sizing, op accounting, re-baselining, re-arming — by
// capability assertion instead of per-detector wrapper code.

// BatchSized is exposed by batch-based stages (QuantTree, SPLL) that
// accumulate a ν-sample window between tests; RunBatch sizes its
// adaptation window to match.
type BatchSized interface {
	BatchSize() int
}

// OpsSettable is exposed by stages whose compute kernels can report into
// a shared operation counter.
type OpsSettable interface {
	SetOps(*opcount.Counter)
}

// Retrainer is implemented by batch stages that can re-baseline their
// reference model on new data after an adaptation; RunBatch invokes it
// with the buffered window so the detector stops firing against a stale
// reference once the model has adapted.
type Retrainer interface {
	Retrain(train [][]float64, r *rng.Rand) error
}

// Resettable is implemented by stages that can be re-armed to their
// as-constructed state after a drift-triggered model rebuild (DDM does
// this implicitly on detection; ADWIN exposes an explicit Reset).
type Resettable interface {
	Reset()
}

// RunBatch evaluates a batch detector paired with the shared
// discriminative model. The detector is any core.Streaming that is also
// BatchSized — there is no batch-specific Observe contract any more. On
// detection the model is rebuilt from the detector's most recent window:
// k-means labels the buffered samples and each instance is
// batch-initialised on its cluster — the adaptation a batch method can
// afford because it already stores the window.
func RunBatch(name string, m *model.Multi, obs core.Streaming, xs [][]float64, ys []int, cfg RunConfig, r *rng.Rand) *RunResult {
	bs, ok := obs.(BatchSized)
	if !ok {
		panic(fmt.Sprintf("eval: %s is not BatchSized; RunBatch needs the batch window to adapt from", name))
	}
	c := cfg.withDefaults()
	res := &RunResult{Name: name}
	var ops opcount.Counter
	m.SetOps(&ops)
	if o, ok := obs.(OpsSettable); ok {
		o.SetOps(&ops)
	}
	var acc *accTracker
	if ys != nil {
		acc = newAccTracker(c, m.Classes(), maxLabel(ys)+1)
	}
	window := make([][]float64, 0, bs.BatchSize())
	start := time.Now()
	for i, x := range xs {
		label, _ := m.Predict(x)
		if acc != nil {
			acc.observe(i, label, ys[i])
		}
		window = append(window, x)
		if len(window) > bs.BatchSize() {
			window = window[1:]
		}
		if obs.Process(x).DriftDetected {
			res.Detections = append(res.Detections, i)
			batchAdapt(m, window, &ops, r)
			if rt, ok := obs.(Retrainer); ok {
				// Re-baseline the detector on the same window; a batch
				// method has the data in memory, which is exactly its
				// cost in Table 4.
				if err := rt.Retrain(window, r); err == nil {
					res.Reconstructions++
				}
			} else {
				res.Reconstructions++
			}
			if acc != nil {
				acc.mapper.Reset()
			}
		}
	}
	res.HostTime = time.Since(start)
	res.Ops = ops
	res.MemoryBytes = m.MemoryBytes() + obs.MemoryBytes()
	res.DetectorBytes = obs.MemoryBytes()
	h := obs.Health()
	res.Health = &h
	res.Delay = computeDelay(res.Detections, c.DriftAt)
	if acc != nil {
		acc.fill(res)
	}
	res.Trace.Name = res.Name
	return res
}

// batchAdapt rebuilds the model from a buffered window: k-means labels
// the window into C clusters, the model resets, and each instance is
// batch-initialised on its cluster's samples.
func batchAdapt(m *model.Multi, window [][]float64, ops *opcount.Counter, r *rng.Rand) {
	if len(window) == 0 {
		return
	}
	classes := m.Classes()
	km := kmeans.Run(window, kmeans.Config{K: classes}, r)
	m.Reset()
	if err := m.InitBatch(window, km.Assign); err != nil {
		// Degenerate windows (a cluster with fewer samples than needed)
		// fall back to sequential training, which always succeeds.
		for i, x := range window {
			m.Train(x, km.Assign[i])
		}
	}
	// The clustering and the batch pseudo-inverse are not instrumented at
	// the kernel level; account their dominant terms explicitly so the
	// device-time model sees the adaptation cost. k-means: iters·n·k·D
	// MACs; batch init: per instance ≈ n·H·D (hidden) + H²·n (gram) +
	// H³ (inverse).
	n, dims := len(window), len(window[0])
	hidden := m.Config().Hidden
	ops.AddMulAdd(km.Iterations * n * classes * dims)
	ops.AddMulAdd(n*hidden*dims + n*hidden*hidden + hidden*hidden*hidden)
}

func maxLabel(ys []int) int {
	max := 0
	for _, y := range ys {
		if y > max {
			max = y
		}
	}
	return max
}

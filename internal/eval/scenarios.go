package eval

import (
	"fmt"

	"edgedrift/internal/core"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/detectors/ddm"
	"edgedrift/internal/model"
	"edgedrift/internal/pool"
	"edgedrift/internal/stream"
)

// Label-delay scenario matrix (ext-scenarios): the paper assumes labels
// never arrive, the supervised baselines assume they arrive instantly —
// real edge deployments sit in between. This experiment sweeps
// {label delay × label budget × drift type × detector mode} on the
// Table 3 cooling-fan streams and reports detection delay and recovery
// for each cell:
//
//   - "unsupervised" is the paper's method unchanged — the reference row
//     every other mode must not regress when labels never arrive.
//   - "hybrid" composes the centroid detector with a DDM error-rate arm
//     (core.Hybrid, FuseEither) fed by a delayed, budgeted label replay
//     (stream.DelaySchedule); late labels buy earlier detection when the
//     error rate moves before the input distribution finishes drifting.
//   - "pooled" wraps the detector in the reoccurring-drift model pool
//     (internal/pool): on the reoccurring stream the old concept returns
//     50 samples after the drift begins, so the checkpoint cut at the
//     drift instant fits the post-drift window and is restored bit-exact
//     instead of cold-retraining over NRecon samples.
//
// Recovery is probed, not inferred from the phase machine, exactly as in
// ext-coop: post-detection samples until the model's mean anomaly score
// on a fixed probe set (the stream's final concept) drops under the bar.
// For the reoccurring stream the final concept is the calibrated one, so
// the bar is margin × θ_error; for sudden it is margin × the competence
// of an oracle detector that adapted to completion.

// ScenarioCell is one row of the matrix.
type ScenarioCell struct {
	// Scenario names the cooling-fan drift type.
	Scenario string `json:"scenario"`
	// Mode is the detector composition: unsupervised, hybrid, pooled.
	Mode string `json:"mode"`
	// DelayKind, Delay and Budget describe the label replay feeding the
	// hybrid arm (fixed delay in samples; budget is the labelled
	// fraction). Unlabelled modes carry zeros.
	DelayKind string  `json:"delay_kind,omitempty"`
	Delay     int     `json:"delay"`
	Budget    float64 `json:"budget"`
	// DetectAt is the sample index where the stage entered
	// reconstruction (-1: never).
	DetectAt int `json:"detect_at"`
	// DetectDelay is DetectAt minus the stream's true drift onset.
	DetectDelay int `json:"detect_delay"`
	// RecoverySamples is how many post-detection samples the model
	// needed before the probe score recovered (-1: never within budget).
	RecoverySamples int `json:"recovery_samples"`
	// LabelsObserved counts labels that reached the supervised arm.
	LabelsObserved uint64 `json:"labels_observed"`
	// SupervisedTriggers counts reconstructions the supervised arm
	// started (hybrid mode, FuseEither).
	SupervisedTriggers uint64 `json:"supervised_triggers"`
	// PoolHits / PoolRestores count pool matches and bit-exact restores
	// (pooled mode).
	PoolHits     uint64 `json:"pool_hits"`
	PoolRestores uint64 `json:"pool_restores"`
}

// ScenarioMatrix is the machine-readable ext-scenarios result (the
// BENCH_9 artifact).
type ScenarioMatrix struct {
	Seed       uint64         `json:"seed"`
	Window     int            `json:"window"`
	ProbeLen   int            `json:"probe_len"`
	CheckEvery int            `json:"check_every"`
	Budget     int            `json:"budget_samples"`
	Margin     float64        `json:"margin"`
	Cells      []ScenarioCell `json:"cells"`
}

// The matrix reuses the ext-coop probe machinery and detector build
// (coopDetector): same window, probe length, cadence and margin, so the
// two benchmarks' recovery columns are directly comparable.
var (
	scenarioDelays  = []int{0, 50}
	scenarioBudgets = []float64{1.0, 0.25}
)

// scenarioStream materialises one drift type's stream.
func scenarioStream(scenario string, seed uint64) (*coolingfan.Stream, [][]float64, []int) {
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)
	var st *coolingfan.Stream
	switch scenario {
	case "reoccurring":
		st = gen.TestReoccurring()
	default:
		st = gen.TestSudden()
	}
	return st, trainX, trainY
}

// scenarioArm is one assembled detector composition under test.
type scenarioArm struct {
	stage   core.Streaming
	det     *core.Detector
	m       *model.Multi
	hybrid  *core.Hybrid // nil outside hybrid mode
	pooled  *pool.Stage  // nil outside pooled mode
	observe func(i int)  // delivers label arrivals due after sample i
}

// buildArm assembles a mode over a freshly trained fan detector.
func buildArm(mode string, st *coolingfan.Stream, trainX [][]float64, trainY []int,
	seed uint64, delay int, budget float64) (*scenarioArm, error) {
	det, m, _, err := coopDetector(trainX, trainY, seed)
	if err != nil {
		return nil, err
	}
	arm := &scenarioArm{stage: det, det: det, m: m}
	switch mode {
	case "unsupervised":
	case "pooled":
		p, err := pool.NewStage(det, pool.Config{})
		if err != nil {
			return nil, err
		}
		arm.stage, arm.pooled = p, p
	case "hybrid":
		h := core.NewHybrid(det, ddm.New(ddm.Config{}), core.HybridConfig{Policy: core.FuseEither})
		arm.stage, arm.hybrid = h, h
		labels := make([]int, len(st.X))
		for i, fromNew := range st.FromNew {
			if fromNew {
				labels[i] = 1
			}
		}
		sched, err := stream.NewDelaySchedule(labels, stream.DelaySpec{
			Kind: stream.DelayFixed, Delay: delay, Budget: budget, Seed: seed + 7,
		})
		if err != nil {
			return nil, err
		}
		arm.observe = func(i int) {
			for _, a := range sched.At(i) {
				// The one-class fan model always predicts "normal" (class
				// 0); the truth label is 1 once the damaged fan feeds the
				// stream, so the error bit is exactly the drift signal a
				// deployment's delayed ground truth would carry.
				h.Observe(a.Label, 0)
			}
		}
	default:
		return nil, fmt.Errorf("eval: unknown scenario mode %q", mode)
	}
	return arm, nil
}

// runCell drives one arm through one stream: detect, then probe the
// recovery exactly as coopRecovery does.
func runCell(arm *scenarioArm, st *coolingfan.Stream, bar float64) (detectAt, recovery int) {
	detectAt = -1
	for i, x := range st.X {
		arm.stage.Process(x)
		if arm.observe != nil {
			arm.observe(i)
		}
		// Phase, not DriftDetected: a supervised trigger starts the
		// reconstruction between samples, without a firing Result.
		if arm.det.PhaseNow() == core.Reconstructing {
			detectAt = i
			break
		}
	}
	if detectAt < 0 {
		return -1, -1
	}
	probe := st.X[len(st.X)-coopProbeLen:]
	tail := st.X[len(st.X)-coopTailLen:]
	rest := st.X[detectAt+1:]
	feed := func(i int) []float64 {
		if i < len(rest) {
			return rest[i]
		}
		return tail[(i-len(rest))%len(tail)]
	}
	// Recovery is stricter than ext-coop's: the stage must be back in
	// Monitoring — reconstruction over, detection capability restored —
	// AND competent on the probe. A freshly reset model can fluke a low
	// probe score while still blind to the next drift; the pool's whole
	// point is cutting the Monitoring-blackout short by restoring a
	// finished model instead of retraining one.
	recovery = -1
	for i := 0; i < coopBudget; i++ {
		if i%coopCheckEvery == 0 && arm.det.PhaseNow() == core.Monitoring &&
			probeMean(arm.m, probe) <= bar {
			recovery = i
			break
		}
		arm.stage.Process(feed(i))
	}
	return detectAt, recovery
}

// scenarioBar computes the recovery bar for one drift type. The
// reoccurring stream ends on the calibrated concept, so the calibrated
// θ_error is the honest competence level; the sudden stream ends on the
// damaged concept, so an oracle detector adapts to completion and its
// own probe score sets the bar (θ_error is measured on the old concept
// and can sit below anything achievable on the new one).
func scenarioBar(scenario string, st *coolingfan.Stream, trainX [][]float64, trainY []int, seed uint64) (float64, error) {
	if scenario == "reoccurring" {
		_, _, thetaErr, err := coopDetector(trainX, trainY, seed)
		if err != nil {
			return 0, err
		}
		return coopMargin * thetaErr, nil
	}
	det, m, _, err := coopDetector(trainX, trainY, seed+31)
	if err != nil {
		return 0, err
	}
	for _, x := range st.X {
		det.Process(x)
	}
	tail := st.X[len(st.X)-coopTailLen:]
	for i := 0; det.PhaseNow() == core.Reconstructing; i++ {
		if i >= coopBudget {
			return 0, fmt.Errorf("eval: %s oracle never settled out of reconstruction", scenario)
		}
		det.Process(tail[i%len(tail)])
	}
	return coopMargin * probeMean(m, st.X[len(st.X)-coopProbeLen:]), nil
}

// RunScenarios runs the full matrix.
func RunScenarios(seed uint64) (*ScenarioMatrix, error) {
	out := &ScenarioMatrix{
		Seed:       seed,
		Window:     coopWindow,
		ProbeLen:   coopProbeLen,
		CheckEvery: coopCheckEvery,
		Budget:     coopBudget,
		Margin:     coopMargin,
	}
	for _, scenario := range []string{"sudden", "reoccurring"} {
		st, trainX, trainY := scenarioStream(scenario, seed)
		bar, err := scenarioBar(scenario, st, trainX, trainY, seed)
		if err != nil {
			return nil, err
		}
		run := func(mode string, delay int, budget float64) error {
			arm, err := buildArm(mode, st, trainX, trainY, seed, delay, budget)
			if err != nil {
				return err
			}
			detectAt, recovery := runCell(arm, st, bar)
			cell := ScenarioCell{
				Scenario:        scenario,
				Mode:            mode,
				Delay:           delay,
				Budget:          budget,
				DetectAt:        detectAt,
				DetectDelay:     detectAt - st.DriftAt,
				RecoverySamples: recovery,
			}
			if detectAt < 0 {
				cell.DetectDelay = -1
			}
			if mode == "hybrid" {
				cell.DelayKind = stream.DelayFixed.String()
				cell.LabelsObserved = arm.hybrid.LabelsObserved()
				cell.SupervisedTriggers = arm.hybrid.SupervisedTriggers()
			}
			if arm.pooled != nil {
				cell.PoolHits = arm.pooled.Hits()
				cell.PoolRestores = arm.pooled.Restores()
			}
			out.Cells = append(out.Cells, cell)
			return nil
		}
		if err := run("unsupervised", 0, 0); err != nil {
			return nil, err
		}
		if err := run("pooled", 0, 0); err != nil {
			return nil, err
		}
		for _, delay := range scenarioDelays {
			for _, budget := range scenarioBudgets {
				if err := run("hybrid", delay, budget); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// ExtensionScenarios is the registry wrapper: the same matrix rendered
// as a table.
func ExtensionScenarios(seed uint64) *Outcome {
	m, err := RunScenarios(seed)
	if err != nil {
		panic(err)
	}
	return ScenariosOutcome(m)
}

// ScenariosOutcome renders an already-computed matrix, so the benchmark
// command does not run the streams twice.
func ScenariosOutcome(m *ScenarioMatrix) *Outcome {
	t := &Table{
		Title: "Extension: label-delay scenario matrix — hybrid detection and the reoccurring-drift model pool (cooling fan)",
		Columns: []string{"scenario", "mode", "delay", "budget", "detected at",
			"detect delay", "recovery (samples)", "labels", "sup-triggers", "pool hits/restores"},
		Notes: []string{
			fmt.Sprintf("recovery = post-detection samples until the mean anomaly score of a %d-sample final-concept probe reaches the bar (margin %.2f)", m.ProbeLen, m.Margin),
			"hybrid = centroid detector + DDM error-rate arm (FuseEither) fed labels `delay` samples late, `budget` fraction labelled",
			"pooled = drift-instant model checkpoints, restored bit-exactly when the post-drift window matches an old concept",
		},
	}
	for _, c := range m.Cells {
		delay, budget, labels, sup := "-", "-", "-", "-"
		if c.Mode == "hybrid" {
			delay = fmt.Sprintf("%d", c.Delay)
			budget = fmt.Sprintf("%.2f", c.Budget)
			labels = fmt.Sprintf("%d", c.LabelsObserved)
			sup = fmt.Sprintf("%d", c.SupervisedTriggers)
		}
		poolCol := "-"
		if c.Mode == "pooled" {
			poolCol = fmt.Sprintf("%d/%d", c.PoolHits, c.PoolRestores)
		}
		t.AddRow(c.Scenario, c.Mode, delay, budget, c.DetectAt, c.DetectDelay,
			recoveryCell(c.RecoverySamples), labels, sup, poolCol)
	}
	return &Outcome{Tables: []*Table{t}}
}

package eval

import "testing"

func TestMapperIdentityFallback(t *testing.T) {
	m := NewLabelMapper(2, 2)
	if m.Map(0) != 0 || m.Map(1) != 1 {
		t.Fatal("fresh mapper must be identity")
	}
	// More predicted classes than true classes: clamp.
	m2 := NewLabelMapper(3, 2)
	if got := m2.Map(2); got != 2 && got != 0 {
		t.Fatalf("fallback Map(2) = %d", got)
	}
}

func TestMapperLearnsPermutation(t *testing.T) {
	m := NewLabelMapper(2, 2)
	// Model predicts flipped ids.
	for i := 0; i < 10; i++ {
		m.Observe(0, 1)
		m.Observe(1, 0)
	}
	if m.Map(0) != 1 || m.Map(1) != 0 {
		t.Fatalf("mapping not learned: %d %d", m.Map(0), m.Map(1))
	}
}

func TestMapperMajorityWins(t *testing.T) {
	m := NewLabelMapper(1, 3)
	m.Observe(0, 2)
	m.Observe(0, 2)
	m.Observe(0, 1)
	if m.Map(0) != 2 {
		t.Fatalf("Map(0) = %d, want 2", m.Map(0))
	}
}

func TestMapperReset(t *testing.T) {
	m := NewLabelMapper(2, 2)
	m.Observe(0, 1)
	m.Reset()
	if m.Map(0) != 0 {
		t.Fatal("Reset did not restore identity fallback")
	}
}

func TestMapperCausality(t *testing.T) {
	// Map must be callable before Observe for the same sample without
	// using that sample's truth.
	m := NewLabelMapper(2, 2)
	got := m.Map(1)
	m.Observe(1, 0)
	if got != 1 {
		t.Fatalf("pre-observation Map(1) = %d, want identity 1", got)
	}
	if m.Map(1) != 0 {
		t.Fatal("post-observation mapping should flip")
	}
}

package eval

import (
	"strconv"
	"testing"
)

func TestAblationAndExtensionRegistries(t *testing.T) {
	abl := RegistryAblations()
	if len(abl) != 7 {
		t.Fatalf("ablation registry size %d", len(abl))
	}
	ext := RegistryExtensions()
	if len(ext) != 8 {
		t.Fatalf("extension registry size %d", len(ext))
	}
	for _, e := range append(abl, ext...) {
		if e.Run == nil || e.ID == "" || e.Title == "" {
			t.Fatalf("incomplete experiment %+v", e.ID)
		}
		got, ok := LookupAny(e.ID)
		if !ok || got.ID != e.ID {
			t.Fatalf("LookupAny(%s) failed", e.ID)
		}
	}
	// Main registry ids resolve through LookupAny too.
	if _, ok := LookupAny("table2"); !ok {
		t.Fatal("LookupAny must cover the main registry")
	}
}

func cellFloat(t *testing.T, tab *Table, r, c int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[r][c], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q", r, c, tab.Rows[r][c])
	}
	return v
}

func cellInt(t *testing.T, tab *Table, r, c int) (int, bool) {
	t.Helper()
	if tab.Rows[r][c] == "-" {
		return 0, false
	}
	v, err := strconv.Atoi(tab.Rows[r][c])
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q", r, c, tab.Rows[r][c])
	}
	return v, true
}

func TestAblationCentroidShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tab := AblationCentroidUpdate(1).Tables[0]
	rm, ok1 := cellInt(t, tab, 0, 2)
	ew, ok2 := cellInt(t, tab, 2, 2)
	if !ok1 || !ok2 {
		t.Fatal("both update rules must detect")
	}
	if ew > rm {
		t.Fatalf("EWMA delay %d should not exceed running mean %d", ew, rm)
	}
}

func TestAblationGateShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tab := AblationErrorGate(1).Tables[0]
	gated := cellFloat(t, tab, 0, 3)
	always := cellFloat(t, tab, 1, 3)
	if gated >= always {
		t.Fatalf("gating must reduce distance-stage invocations: %v vs %v", gated, always)
	}
}

func TestAblationMultiWindowShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tab := AblationMultiWindow(1).Tables[0]
	// Rows: single W=10, single W=150, ensemble q1, ensemble q2.
	if tab.Rows[1][2] != "no" {
		t.Fatal("single W=150 must miss the reoccurring burst")
	}
	if tab.Rows[0][2] != "yes" {
		t.Fatal("single W=10 must catch the reoccurring burst")
	}
	if tab.Rows[3][2] != "no" {
		t.Fatal("quorum-2 ensemble must veto the burst")
	}
	if tab.Rows[2][2] != "yes" {
		t.Fatal("quorum-1 ensemble must flag the burst")
	}
}

func TestExtensionFixedPointShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tab := ExtensionFixedPoint(1).Tables[0]
	floatMs := cellFloat(t, tab, 0, 2)
	fixedMs := cellFloat(t, tab, 1, 2)
	if fixedMs*20 > floatMs {
		t.Fatalf("fixed point must be ≫ cheaper: %v vs %v ms", fixedMs, floatMs)
	}
	if tab.Rows[1][4] != "yes" {
		t.Fatal("fixed-point deployment must fit the Pico")
	}
	if _, detected := cellInt(t, tab, 1, 1); !detected {
		t.Fatal("fixed-point monitor must detect the drift")
	}
}

func TestExtensionIncrementalShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment")
	}
	tab := ExtensionIncremental(1).Tables[0]
	for r := range tab.Rows {
		if _, detected := cellInt(t, tab, r, 1); !detected {
			t.Fatalf("row %d: incremental drift missed", r)
		}
		recons := cellFloat(t, tab, r, 3)
		if recons < 2 {
			t.Fatalf("row %d: a slow morph should force multiple reconstructions, got %v", r, recons)
		}
	}
}

package eval

import "testing"

// TestCoopWarmBeatsCold is the headline claim of the cooperative
// extension: seeding a drifted stream's rebuild with the merged state of
// already-adapted cohort peers strictly reduces the post-drift recovery
// delay versus rebuilding alone, on every sustained-drift scenario.
func TestCoopWarmBeatsCold(t *testing.T) {
	if testing.Short() {
		t.Skip("cooperative comparison replays full fan streams")
	}
	cmp, err := RunCoop(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Scenarios) != 2 {
		t.Fatalf("scenarios = %d, want sudden + gradual", len(cmp.Scenarios))
	}
	for _, s := range cmp.Scenarios {
		if s.DetectAt < 0 {
			t.Fatalf("%s: drift never detected", s.Scenario)
		}
		if s.WarmRecoverySamples < 0 {
			t.Fatalf("%s: warm recovery never converged within %d samples", s.Scenario, cmp.Budget)
		}
		// Cold recovery that never converges (-1) still loses to any
		// finite warm recovery.
		if s.ColdRecoverySamples >= 0 && s.WarmRecoverySamples >= s.ColdRecoverySamples {
			t.Fatalf("%s: warm recovery (%d samples) not strictly faster than cold (%d)",
				s.Scenario, s.WarmRecoverySamples, s.ColdRecoverySamples)
		}
	}
}

// TestExtensionCoopShape checks the registry-facing rendering.
func TestExtensionCoopShape(t *testing.T) {
	if testing.Short() {
		t.Skip("cooperative comparison replays full fan streams")
	}
	out := ExtensionCoop(1)
	if len(out.Tables) != 1 {
		t.Fatalf("tables = %d", len(out.Tables))
	}
	tb := out.Tables[0]
	if len(tb.Rows) != 2 || len(tb.Columns) != 4 {
		t.Fatalf("table shape = %dx%d", len(tb.Rows), len(tb.Columns))
	}
	if tb.String() == "" {
		t.Fatal("empty render")
	}
}

package eval

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestPoolRunsEverything(t *testing.T) {
	p := NewPool(3)
	var n atomic.Int64
	for i := 0; i < 50; i++ {
		p.Go(func() error { n.Add(1); return nil })
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 50 {
		t.Fatalf("ran %d tasks, want 50", n.Load())
	}
}

func TestPoolBoundsConcurrency(t *testing.T) {
	const workers = 2
	p := NewPool(workers)
	var cur, peak atomic.Int64
	for i := 0; i < 20; i++ {
		p.Go(func() error {
			c := cur.Add(1)
			for {
				old := peak.Load()
				if c <= old || peak.CompareAndSwap(old, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	}
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Fatalf("observed %d concurrent tasks, bound is %d", got, workers)
	}
}

func TestPoolFirstErrorWins(t *testing.T) {
	p := NewPool(1) // serial: deterministic completion order
	want := errors.New("boom")
	p.Go(func() error { return want })
	p.Go(func() error { return errors.New("later") })
	if err := p.Wait(); !errors.Is(err, want) {
		t.Fatalf("Wait() = %v, want the first error", err)
	}
	// The retained error is cleared; the pool is reusable.
	p.Go(func() error { return nil })
	if err := p.Wait(); err != nil {
		t.Fatalf("reused pool returned stale error %v", err)
	}
}

func TestPoolRecoversPanics(t *testing.T) {
	p := NewPool(2)
	p.Go(func() error { panic("kaboom") })
	err := p.Wait()
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Wait() = %v, want recovered panic", err)
	}
}

func TestRunSetOrderAndErrors(t *testing.T) {
	runs := make([]MethodRun, 6)
	for i := range runs {
		i := i
		runs[i] = MethodRun{
			Name: fmt.Sprintf("m%d", i),
			Run:  func() (*RunResult, error) { return &RunResult{Name: fmt.Sprintf("m%d", i)}, nil },
		}
	}
	out, err := RunSet(runs...)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range out {
		if want := fmt.Sprintf("m%d", i); res.Name != want {
			t.Fatalf("slot %d holds %q, want %q", i, res.Name, want)
		}
	}

	runs[3].Run = func() (*RunResult, error) { return nil, errors.New("bad detector") }
	if _, err := RunSet(runs...); err == nil || !strings.Contains(err.Error(), "m3") {
		t.Fatalf("RunSet error = %v, want wrapped with run name m3", err)
	}
}

package eval

import (
	"fmt"
	"sort"

	"edgedrift/internal/core"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/detectors/quanttree"
	"edgedrift/internal/detectors/spll"
	"edgedrift/internal/device"
	"edgedrift/internal/model"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
	"edgedrift/internal/stats"
)

// Figure is a reproduced figure: named series over a shared x axis.
type Figure struct {
	Name   string
	XLabel string
	YLabel string
	Series []Series
}

// Outcome bundles everything one experiment produces.
type Outcome struct {
	Tables  []*Table
	Figures []Figure
}

// Experiment is a registered, regenerable paper artifact.
type Experiment struct {
	// ID is the registry key ("table2", "fig4", ...).
	ID string
	// Title describes the paper artifact.
	Title string
	// Run regenerates the artifact; seed controls all randomness.
	Run func(seed uint64) *Outcome
}

// Registry returns all experiments in paper order.
func Registry() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Figure 1: four concept drift types", Run: Figure1},
		{ID: "fig3", Title: "Figure 3: centroid geometry around a drift", Run: Figure3},
		{ID: "fig4", Title: "Figure 4: accuracy changes on NSL-KDD", Run: Figure4},
		{ID: "table2", Title: "Table 2: accuracy and detection delay on NSL-KDD", Run: Table2},
		{ID: "table3", Title: "Table 3: window size vs detection delay on cooling fan", Run: Table3},
		{ID: "table4", Title: "Table 4: memory utilization", Run: Table4},
		{ID: "table5", Title: "Table 5: execution time for 700 samples on Raspberry Pi 4", Run: Table5},
		{ID: "table6", Title: "Table 6: execution time breakdown on Raspberry Pi Pico", Run: Table6},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---------------------------------------------------------------------------
// Shared setup
// ---------------------------------------------------------------------------

// Paper hyper-parameters (§4.2).
const (
	nslHidden         = 22
	nslQTBatch        = 480
	nslQTBins         = 32
	nslSPLLBatch      = 480
	nslONLADForget    = 0.97
	fanHidden         = 22
	fanQTBatch        = 235
	fanQTBins         = 16
	fanSPLLBatch      = 235
	fanONLADForget    = 0.99
	fanTrainN         = 120
	proposedNReconNSL = 1500
	proposedNReconFan = 200
)

// modelPrecision is the numeric backend every experiment's model is
// built with. The zero value (oselm.Float64) reproduces the paper's
// tables bit-identically; SetPrecision(oselm.Float32) re-runs the same
// experiments on the float32 inference backend so Table-2 parity can be
// measured against the f64 goldens.
var modelPrecision oselm.Precision

// SetPrecision selects the numeric backend for subsequently-run
// experiments. Only Float64 and Float32 are trainable; the Q16.16
// backend is inference-only and is rejected here (quantise a fitted
// monitor via edgedrift.Monitor.QuantizeQ16 instead). Not safe to call
// concurrently with a running experiment.
func SetPrecision(p oselm.Precision) error {
	switch p {
	case oselm.Float64, oselm.Float32:
		modelPrecision = p
		return nil
	default:
		return fmt.Errorf("eval: precision %v is not trainable (valid: f64, f32)", p)
	}
}

// ModelPrecision reports the backend experiments currently build with.
func ModelPrecision() oselm.Precision { return modelPrecision }

// trainPrequential trains the model sample-by-sample while recording the
// winner anomaly score of each sample *before* training on it — the
// unbiased estimate of deployment-time scores. It returns μ + 2σ of the
// second-half scores, the harness's calibration of the paper's tuning
// parameter θ_error (post-training scores are overfit-low and would open
// a check window on every sample).
func trainPrequential(m *model.Multi, xs [][]float64, ys []int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("eval: %d samples vs %d labels", len(xs), len(ys))
	}
	var tail stats.Running
	for i, x := range xs {
		_, score := m.Predict(x)
		if i >= len(xs)/2 {
			tail.Observe(score)
		}
		m.Train(x, ys[i])
	}
	return tail.Mean() + 2*tail.Std(), nil
}

// nslModel builds and initially trains a fresh discriminative model on
// the NSL-KDD surrogate.
func nslModel(ds *nslkdd.Dataset, forgetting float64, seed uint64) (*model.Multi, error) {
	m, err := model.New(model.Config{
		Classes:    2,
		Inputs:     nslkdd.Features,
		Hidden:     nslHidden,
		Forgetting: forgetting,
		Ridge:      1e-2,
		Precision:  modelPrecision,
	}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	if err := m.InitSequential(ds.TrainX, ds.TrainY); err != nil {
		return nil, err
	}
	return m, nil
}

// fanModel builds and trains the single-class cooling-fan model.
func fanModel(trainX [][]float64, trainY []int, forgetting float64, seed uint64) (*model.Multi, error) {
	m, err := model.New(model.Config{
		Classes:    1,
		Inputs:     coolingfan.Features,
		Hidden:     fanHidden,
		Forgetting: forgetting,
		Ridge:      1e-2,
		Precision:  modelPrecision,
	}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	if err := m.InitSequential(trainX, trainY); err != nil {
		return nil, err
	}
	return m, nil
}

// proposedNSL builds a calibrated proposed-method detector for NSL-KDD.
func proposedNSL(ds *nslkdd.Dataset, window int, seed uint64) (*core.Detector, error) {
	m, err := model.New(model.Config{
		Classes:   2,
		Inputs:    nslkdd.Features,
		Hidden:    nslHidden,
		Ridge:     1e-2,
		Precision: modelPrecision,
	}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	thetaErr, err := trainPrequential(m, ds.TrainX, ds.TrainY)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(window)
	cfg.Precision = modelPrecision
	cfg.NRecon = proposedNReconNSL
	cfg.NSearch = 30
	cfg.NUpdate = 500
	cfg.ErrorThreshold = thetaErr
	det, err := core.New(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := det.Calibrate(ds.TrainX, ds.TrainY); err != nil {
		return nil, err
	}
	return det, nil
}

// proposedFan builds a calibrated proposed-method detector for the
// cooling-fan stream.
func proposedFan(trainX [][]float64, trainY []int, window int, seed uint64) (*core.Detector, error) {
	m, err := model.New(model.Config{
		Classes:   1,
		Inputs:    coolingfan.Features,
		Hidden:    fanHidden,
		Ridge:     1e-2,
		Precision: modelPrecision,
	}, rng.New(seed))
	if err != nil {
		return nil, err
	}
	thetaErr, err := trainPrequential(m, trainX, trainY)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(window)
	cfg.Precision = modelPrecision
	cfg.NRecon = proposedNReconFan
	cfg.NUpdate = 50
	cfg.ErrorThreshold = thetaErr
	det, err := core.New(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := det.Calibrate(trainX, trainY); err != nil {
		return nil, err
	}
	return det, nil
}

// runAllNSL evaluates the five §4.2 method combinations on the NSL-KDD
// surrogate, using the given window for the proposed method. The five
// runs are independent — each owns its model and RNG streams and only
// reads the shared dataset — so they execute concurrently.
func runAllNSL(seed uint64, window int) ([]*RunResult, error) {
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	cfg := RunConfig{DriftAt: ds.DriftAt}
	return RunSet(
		MethodRun{Name: "Quant Tree", Run: func() (*RunResult, error) {
			m, err := nslModel(ds, 1, seed)
			if err != nil {
				return nil, err
			}
			qt, err := quanttree.New(ds.TrainX, quanttree.Config{Bins: nslQTBins, BatchSize: nslQTBatch, CalibrationTrials: 800}, rng.New(seed+10))
			if err != nil {
				return nil, err
			}
			return RunBatch("Quant Tree", m, qt, ds.TestX, ds.TestY, cfg, rng.New(seed+11)), nil
		}},
		MethodRun{Name: "SPLL", Run: func() (*RunResult, error) {
			m, err := nslModel(ds, 1, seed)
			if err != nil {
				return nil, err
			}
			sp, err := spll.New(ds.TrainX, spll.Config{Clusters: 3, BatchSize: nslSPLLBatch, CalibrationTrials: 120}, rng.New(seed+12))
			if err != nil {
				return nil, err
			}
			return RunBatch("SPLL", m, sp, ds.TestX, ds.TestY, cfg, rng.New(seed+13)), nil
		}},
		MethodRun{Name: "Baseline", Run: func() (*RunResult, error) {
			m, err := nslModel(ds, 1, seed)
			if err != nil {
				return nil, err
			}
			return RunStatic(m, ds.TestX, ds.TestY, cfg), nil
		}},
		MethodRun{Name: "ONLAD", Run: func() (*RunResult, error) {
			m, err := nslModel(ds, nslONLADForget, seed)
			if err != nil {
				return nil, err
			}
			return RunONLAD(m, ds.TestX, ds.TestY, cfg), nil
		}},
		MethodRun{Name: "Proposed", Run: func() (*RunResult, error) {
			det, err := proposedNSL(ds, window, seed)
			if err != nil {
				return nil, err
			}
			return RunProposed(det, ds.TestX, ds.TestY, cfg), nil
		}},
	)
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

// Figure1 regenerates the four drift-type illustrations as 1-D streams:
// the y value is the data distribution's location over time.
func Figure1(seed uint64) *Outcome {
	pre := synth.NewGaussian([][]float64{{0}}, 0.3)
	post := synth.NewGaussian([][]float64{{4}}, 0.3)
	const n = 1000
	specs := []synth.Spec{
		{Kind: synth.Sudden, Start: 500},
		{Kind: synth.Gradual, Start: 350, End: 650},
		{Kind: synth.Incremental, Start: 350, End: 650},
		{Kind: synth.Reoccurring, Start: 400, End: 600},
	}
	fig := Figure{Name: "fig1", XLabel: "time", YLabel: "data distribution"}
	summary := &Table{
		Title:   "Figure 1: four concept drift types (1-D stream means by segment)",
		Columns: []string{"type", "mean[0:start]", "mean[transition]", "mean[end segment]"},
	}
	r := rng.New(seed)
	for _, spec := range specs {
		st, err := synth.Generate(pre, post, n, spec, r.Split())
		if err != nil {
			panic(err) // static specs; cannot fail
		}
		s := Series{Name: spec.Kind.String()}
		for i, x := range st.X {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, x[0])
		}
		fig.Series = append(fig.Series, s)
		end := spec.End
		if spec.Kind == synth.Sudden {
			end = spec.Start
		}
		summary.AddRow(spec.Kind.String(),
			meanRange(s.Y, 0, spec.Start),
			meanRange(s.Y, spec.Start, end),
			meanRange(s.Y, end, n))
	}
	return &Outcome{Tables: []*Table{summary}, Figures: []Figure{fig}}
}

func meanRange(ys []float64, lo, hi int) float64 {
	if hi <= lo {
		return 0
	}
	var s float64
	for _, v := range ys[lo:hi] {
		s += v
	}
	return s / float64(hi-lo)
}

// ---------------------------------------------------------------------------
// Figure 4 and Table 2
// ---------------------------------------------------------------------------

// Figure4 regenerates the accuracy-over-time curves of the five methods
// on the NSL-KDD surrogate (proposed method at W=100).
func Figure4(seed uint64) *Outcome {
	results, err := runAllNSL(seed, 100)
	if err != nil {
		panic(err)
	}
	fig := Figure{Name: "fig4", XLabel: "sample", YLabel: "accuracy (moving window)"}
	summary := &Table{
		Title:   "Figure 4 summary: windowed accuracy before/after the drift (drift at sample 8333)",
		Columns: []string{"method", "overall", "pre-drift", "post-drift"},
	}
	for _, res := range results {
		fig.Series = append(fig.Series, res.Trace)
		summary.AddRow(res.Name, pct(res.Accuracy), pct(res.PreDrift), pct(res.PostDrift))
	}
	return &Outcome{Tables: []*Table{summary}, Figures: []Figure{fig}}
}

// Table2 regenerates the accuracy/delay comparison, including the
// proposed method at the paper's three window sizes.
func Table2(seed uint64) *Outcome {
	t := &Table{
		Title:   "Table 2: accuracy (%) and delay for detecting concept drift on NSL-KDD",
		Columns: []string{"method", "accuracy (%)", "delay"},
	}
	results, err := runAllNSL(seed, 100)
	if err != nil {
		panic(err)
	}
	// Paper row order: Quant Tree, SPLL, Baseline, ONLAD, Proposed×3.
	for _, res := range results[:4] {
		t.AddRow(res.Name, pct(res.Accuracy), delayCell(res.Delay))
	}
	t.AddRow(results[4].Name, pct(results[4].Accuracy), delayCell(results[4].Delay))
	if h := results[4].Health; h != nil {
		t.Notes = append(t.Notes, h.String())
	}
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	windows := []int{250, 1000}
	runs := make([]MethodRun, len(windows))
	for i, w := range windows {
		w := w
		runs[i] = MethodRun{Name: fmt.Sprintf("proposed W=%d", w), Run: func() (*RunResult, error) {
			det, err := proposedNSL(ds, w, seed)
			if err != nil {
				return nil, err
			}
			return RunProposed(det, ds.TestX, ds.TestY, RunConfig{DriftAt: ds.DriftAt}), nil
		}}
	}
	extra, err2 := RunSet(runs...)
	if err2 != nil {
		panic(err2)
	}
	for _, res := range extra {
		t.AddRow(res.Name, pct(res.Accuracy), delayCell(res.Delay))
	}
	return &Outcome{Tables: []*Table{t}}
}

func pct(v float64) float64 { return 100 * v }

func delayCell(d int) string {
	if d < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", d)
}

// ---------------------------------------------------------------------------
// Table 3
// ---------------------------------------------------------------------------

// Table3 regenerates the window-size vs detection-delay analysis on the
// three cooling-fan drift types.
func Table3(seed uint64) *Outcome {
	t := &Table{
		Title:   "Table 3: delay for detecting concept drift with different window sizes on cooling fan",
		Columns: []string{"window", "sudden", "gradual", "reoccurring"},
	}
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)
	streams := []*coolingfan.Stream{gen.TestSudden(), gen.TestGradual(), gen.TestReoccurring()}
	windows := []int{10, 50, 150}
	cells := make([][]string, len(windows))
	pool := NewPool(0)
	for wi, w := range windows {
		cells[wi] = make([]string, len(streams))
		for si, st := range streams {
			wi, si, w, st := wi, si, w, st
			pool.Go(func() error {
				det, err := proposedFan(trainX, trainY, w, seed)
				if err != nil {
					return fmt.Errorf("W=%d stream %d: %w", w, si, err)
				}
				res := RunProposed(det, st.X, nil, RunConfig{DriftAt: st.DriftAt})
				cells[wi][si] = delayCell(res.Delay)
				return nil
			})
		}
	}
	if err := pool.Wait(); err != nil {
		panic(err)
	}
	for wi, w := range windows {
		row := []interface{}{fmt.Sprintf("W=%d", w)}
		for _, c := range cells[wi] {
			row = append(row, c)
		}
		t.AddRow(row...)
	}
	return &Outcome{Tables: []*Table{t}}
}

func fanParams(seed uint64) coolingfan.Params {
	p := coolingfan.DefaultParams()
	p.Seed = seed
	return p
}

// ---------------------------------------------------------------------------
// Table 4
// ---------------------------------------------------------------------------

// Table4 regenerates the memory-utilisation comparison in the
// cooling-fan configuration (D=511, ν=235). Reported bytes are the
// detector-specific state — the discriminative model is common to every
// method and is listed separately for context.
func Table4(seed uint64) *Outcome {
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)

	qt, err := quanttree.New(trainX, quanttree.Config{Bins: fanQTBins, BatchSize: fanQTBatch, CalibrationTrials: 400}, rng.New(seed+1))
	if err != nil {
		panic(err)
	}
	sp, err := spll.New(trainX, spll.Config{Clusters: 3, BatchSize: fanSPLLBatch, CalibrationTrials: 30}, rng.New(seed+2))
	if err != nil {
		panic(err)
	}
	det, err := proposedFan(trainX, trainY, 50, seed)
	if err != nil {
		panic(err)
	}

	pico := device.PiPico()
	t := &Table{
		Title:   "Table 4: memory utilization (kB), cooling-fan configuration (D=511)",
		Columns: []string{"method", "detector memory (kB)", "fits Raspberry Pi Pico (264 kB)"},
		Notes: []string{
			fmt.Sprintf("shared OS-ELM discriminative model: %.1f kB (all methods)", device.KB(det.Model().MemoryBytes())),
			"detector memory excludes the shared model; batch methods buffer ν×D float64 samples",
		},
	}
	detBytes := det.MemoryBytes() - det.Model().MemoryBytes()
	t.AddRow("Quant Tree", device.KB(qt.MemoryBytes()), fits(pico, qt.MemoryBytes()))
	t.AddRow("SPLL", device.KB(sp.MemoryBytes()), fits(pico, sp.MemoryBytes()))
	t.AddRow("Proposed method", device.KB(detBytes), fits(pico, detBytes))
	return &Outcome{Tables: []*Table{t}}
}

func fits(p device.Profile, bytes int) string {
	if p.FitsIn(bytes, 0) {
		return "yes"
	}
	return "no"
}

// ---------------------------------------------------------------------------
// Table 5
// ---------------------------------------------------------------------------

// Table5 regenerates the 700-sample execution-time comparison. Times are
// modelled Raspberry Pi 4 seconds derived from counted operations; the
// measured host wall-clock time is shown alongside.
func Table5(seed uint64) *Outcome {
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)
	stream := gen.TestSudden()
	cfg := RunConfig{DriftAt: stream.DriftAt}
	pi4 := device.Pi4()

	var rows []*RunResult

	mQT, err := fanModel(trainX, trainY, 1, seed)
	if err != nil {
		panic(err)
	}
	qt, err := quanttree.New(trainX, quanttree.Config{Bins: fanQTBins, BatchSize: fanQTBatch, CalibrationTrials: 400}, rng.New(seed+1))
	if err != nil {
		panic(err)
	}
	rows = append(rows, RunBatch("Quant Tree", mQT, qt, stream.X, nil, cfg, rng.New(seed+2)))

	mSP, err := fanModel(trainX, trainY, 1, seed)
	if err != nil {
		panic(err)
	}
	sp, err := spll.New(trainX, spll.Config{Clusters: 3, BatchSize: fanSPLLBatch, CalibrationTrials: 30}, rng.New(seed+3))
	if err != nil {
		panic(err)
	}
	rows = append(rows, RunBatch("SPLL", mSP, sp, stream.X, nil, cfg, rng.New(seed+4)))

	mBase, err := fanModel(trainX, trainY, 1, seed)
	if err != nil {
		panic(err)
	}
	rows = append(rows, RunStatic(mBase, stream.X, nil, cfg))

	det, err := proposedFan(trainX, trainY, 50, seed)
	if err != nil {
		panic(err)
	}
	rows = append(rows, RunProposed(det, stream.X, nil, cfg))

	t := &Table{
		Title:   "Table 5: execution time (sec) for 700 samples, Raspberry Pi 4 model",
		Columns: []string{"method", "modelled Pi4 time (s)", "host wall time (ms)"},
	}
	for _, res := range rows {
		t.AddRow(res.Name, pi4.Seconds(res.Ops), float64(res.HostTime.Microseconds())/1000)
	}
	return &Outcome{Tables: []*Table{t}}
}

// ---------------------------------------------------------------------------
// Table 6
// ---------------------------------------------------------------------------

// Table6 regenerates the per-sample execution-time breakdown of the
// proposed method on the Raspberry Pi Pico model: the fan stream is run
// end to end (including a drift and reconstruction) and each
// instrumented stage's mean per-invocation cost is converted to Pico
// milliseconds.
func Table6(seed uint64) *Outcome {
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)
	stream := gen.TestSudden()
	det, err := proposedFan(trainX, trainY, 50, seed)
	if err != nil {
		panic(err)
	}
	RunProposed(det, stream.X, nil, RunConfig{DriftAt: stream.DriftAt})

	pico := device.PiPico()
	t := &Table{
		Title:   "Table 6: execution time breakdown (msec) for 1 sample, Raspberry Pi Pico model",
		Columns: []string{"stage", "time (ms)", "invocations"},
		Notes: []string{
			"per-invocation means over the 700-sample sudden-drift run (one reconstruction)",
		},
	}
	stages := core.Stages()
	// Keep Table 6 row order: prediction, distance, retrain −/+, init,
	// update.
	order := []core.Stage{
		core.StageLabelPrediction,
		core.StageDistance,
		core.StageRetrainNoPred,
		core.StageRetrainWithPred,
		core.StageCoordInit,
		core.StageCoordUpdate,
	}
	sort.SliceStable(stages, func(i, j int) bool {
		return indexOfStage(order, stages[i]) < indexOfStage(order, stages[j])
	})
	for _, s := range stages {
		ops, n := det.StageOps(s)
		if n == 0 {
			t.AddRow(s.String(), "-", 0)
			continue
		}
		perCall := pico.Millis(ops) / float64(n)
		t.AddRow(s.String(), perCall, n)
	}
	return &Outcome{Tables: []*Table{t}}
}

func indexOfStage(order []core.Stage, s core.Stage) int {
	for i, o := range order {
		if o == s {
			return i
		}
	}
	return len(order)
}

// Figure3 reproduces the paper's algorithm illustration computationally:
// three labelled 2-D clusters are learned (trained centroids), a stream
// of test samples updates the recent centroids, and after a drift moves
// one cluster the corresponding recent centroid trails away from its
// trained twin — the geometric event Algorithm 1 thresholds on.
func Figure3(seed uint64) *Outcome {
	means := [][]float64{{0, 0}, {6, 0}, {3, 5}}
	pre := synth.NewGaussian(means, 0.4)
	// Drift: the "blue" cluster (index 0) moves to a new location.
	post := &synth.Gaussian{Means: [][]float64{{2.5, -3}, {6, 0}, {3, 5}}, Std: 0.4}
	r := rng.New(seed)
	trainX, trainY := synth.TrainingSet(pre, 300, r)

	m, err := model.New(model.Config{Classes: 3, Inputs: 2, Hidden: 8, Ridge: 1e-2, Precision: modelPrecision}, rng.New(seed))
	if err != nil {
		panic(err)
	}
	thetaErr, err := trainPrequential(m, trainX, trainY)
	if err != nil {
		panic(err)
	}
	cfg := core.DefaultConfig(60)
	cfg.Precision = modelPrecision
	cfg.ErrorThreshold = thetaErr
	det, err := core.New(m, cfg)
	if err != nil {
		panic(err)
	}
	if err := det.Calibrate(trainX, trainY); err != nil {
		panic(err)
	}

	dist := func() float64 {
		var s float64
		for c := 0; c < 3; c++ {
			tc, rc := det.TrainedCentroid(c), det.RecentCentroid(c)
			for j := range tc {
				d := tc[j] - rc[j]
				if d < 0 {
					d = -d
				}
				s += d
			}
		}
		return s
	}

	t := &Table{
		Title:   "Figure 3: trained vs recent centroids before and after a drift (Σ L1 distance)",
		Columns: []string{"stage", "Σ|recent − trained|", "θ_drift"},
	}
	t.AddRow("after calibration", dist(), det.ThetaDrift())

	// Phase (c): stable test data — recent centroids stay put.
	st1, err := synth.Generate(pre, pre, 400, synth.Spec{Kind: synth.Sudden, Start: 399}, r)
	if err != nil {
		panic(err)
	}
	for _, x := range st1.X {
		det.Process(x)
	}
	t.AddRow("after 400 stable samples (Fig. 3c)", dist(), det.ThetaDrift())

	// Phase (d): the blue cluster moves; its recent centroid follows.
	fig := Figure{Name: "fig3", XLabel: "sample", YLabel: "Σ|recent − trained| (L1)"}
	trail := Series{Name: "centroid distance"}
	thr := Series{Name: "θ_drift"}
	detectedAt := -1
	for i := 0; i < 1200; i++ {
		x, _ := post.Sample(r)
		res := det.Process(x)
		if res.DriftDetected && detectedAt < 0 {
			detectedAt = i
		}
		if i%10 == 0 {
			trail.X = append(trail.X, float64(i))
			trail.Y = append(trail.Y, dist())
			thr.X = append(thr.X, float64(i))
			thr.Y = append(thr.Y, det.ThetaDrift())
		}
		if detectedAt >= 0 {
			break
		}
	}
	fig.Series = append(fig.Series, trail, thr)
	t.AddRow("at drift detection (Fig. 3d)", dist(), det.ThetaDrift())
	t.AddRow("samples of drifted data until detection", detectedAt, "")
	return &Outcome{Tables: []*Table{t}, Figures: []Figure{fig}}
}

package eval

import (
	"fmt"

	"edgedrift/internal/core"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

// Cooperative-recovery experiment (ext-coop): on the Table 3
// cooling-fan scenarios, compare how fast a just-drifted stream's model
// becomes competent on the post-drift concept when it recovers alone
// (the paper's cold reconstruction) versus when it is warm-seeded with
// the closed-form merge of cohort peers that already adapted — the
// fleet's drift-triggered warm recovery, measured end to end.
//
// The peers are other fans of the same make (same model seed, so the
// random projections are bit-identical and the merge fingerprints
// match) whose streams drifted earlier: each peer replays its own copy
// of the scenario (its own data seed) to completion, adapting its model
// to the post-drift concept. The target then replays its stream until
// its own drift detection fires; the warm arm seeds the rebuilding
// model with the peers' merged state at that instant, the cold arm does
// nothing — exactly the two paths Fleet.ProcessBatch takes with
// WarmRecovery on and off.
//
// Competence is probed, not inferred from the phase machine: the
// detector's reconstruction takes a fixed NRecon samples either way, so
// the honest metric is how many post-detection samples the model needs
// before its mean anomaly score on a fixed post-drift probe set reaches
// adapted-peer competence (within 25% of the peers' own probe score —
// the calibrated pre-drift θ_error is measured on the old concept and
// can sit below what any model achieves on the new one). A warm-seeded
// model starts there; a cold one has to re-learn the concept sample by
// sample.

// CoopScenario is one scenario row of the comparison.
type CoopScenario struct {
	// Scenario names the cooling-fan drift type (Table 3 column).
	Scenario string `json:"scenario"`
	// Window is the proposed method's check-window size.
	Window int `json:"window"`
	// Peers is how many adapted cohort peers donated state.
	Peers int `json:"peers"`
	// DetectAt is the sample index where the target detected its drift.
	DetectAt int `json:"detect_at"`
	// ColdRecoverySamples is how many post-detection samples the lone
	// rebuild needed before the probe score recovered (-1: never within
	// the budget).
	ColdRecoverySamples int `json:"cold_recovery_samples"`
	// WarmRecoverySamples is the same for the peer-seeded rebuild.
	WarmRecoverySamples int `json:"warm_recovery_samples"`
	// ProbeThreshold is the recovery bar: 1.25 × the adapted peers' own
	// mean probe score.
	ProbeThreshold float64 `json:"probe_threshold"`
}

// CoopComparison is the machine-readable ext-coop result (the BENCH_8
// artifact).
type CoopComparison struct {
	Seed       uint64         `json:"seed"`
	PeerCount  int            `json:"peer_count"`
	ProbeLen   int            `json:"probe_len"`
	CheckEvery int            `json:"check_every"`
	Budget     int            `json:"budget_samples"`
	Scenarios  []CoopScenario `json:"scenarios"`
}

const (
	coopWindow     = 50  // Table 3 middle window
	coopPeers      = 3   // donating cohort members
	coopProbeLen   = 100 // post-drift probe set size
	coopCheckEvery = 10  // probe cadence in samples
	coopBudget     = 2500
	coopTailLen    = 150  // stream tail recycled once the scenario ends
	coopMargin     = 1.25 // recovery bar relative to peer competence
)

// coopDetector builds the fan detector and keeps the model handle so
// the probe can score read-only through it.
func coopDetector(trainX [][]float64, trainY []int, seed uint64) (*core.Detector, *model.Multi, float64, error) {
	m, err := model.New(model.Config{
		Classes:   1,
		Inputs:    coolingfan.Features,
		Hidden:    fanHidden,
		Ridge:     1e-2,
		Precision: modelPrecision,
	}, rng.New(seed))
	if err != nil {
		return nil, nil, 0, err
	}
	thetaErr, err := trainPrequential(m, trainX, trainY)
	if err != nil {
		return nil, nil, 0, err
	}
	cfg := core.DefaultConfig(coopWindow)
	cfg.Precision = modelPrecision
	cfg.NRecon = proposedNReconFan
	cfg.NUpdate = 50
	cfg.ErrorThreshold = thetaErr
	det, err := core.New(m, cfg)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := det.Calibrate(trainX, trainY); err != nil {
		return nil, nil, 0, err
	}
	return det, m, thetaErr, nil
}

// probeMean scores the probe set read-only through the model.
func probeMean(m *model.Multi, probe [][]float64) float64 {
	sum := 0.0
	for _, x := range probe {
		_, score := m.Predict(x)
		sum += score
	}
	return sum / float64(len(probe))
}

// coopStream materialises one scenario's stream for a given data seed.
func coopStream(scenario string, seed uint64) (*coolingfan.Stream, [][]float64, []int) {
	gen := coolingfan.NewGenerator(fanParams(seed))
	trainX, trainY := gen.TrainingSet(fanTrainN)
	var st *coolingfan.Stream
	switch scenario {
	case "gradual":
		st = gen.TestGradual()
	default:
		st = gen.TestSudden()
	}
	return st, trainX, trainY
}

// adaptPeer replays a peer's own stream to completion and settles it
// out of any in-flight reconstruction by recycling the stream tail (the
// fan stays in its drifted state; the generator merely stops). Returns
// the peer's exported merge state and its mean score on the target's
// probe set — the competence bar the recovery arms must reach.
func adaptPeer(scenario string, dataSeed, modelSeed uint64, probe [][]float64) ([]byte, float64, error) {
	st, trainX, trainY := coopStream(scenario, dataSeed)
	det, m, _, err := coopDetector(trainX, trainY, modelSeed)
	if err != nil {
		return nil, 0, err
	}
	for _, x := range st.X {
		det.Process(x)
	}
	tail := st.X[len(st.X)-coopTailLen:]
	for i := 0; det.PhaseNow() == core.Reconstructing; i++ {
		if i >= coopBudget {
			return nil, 0, fmt.Errorf("eval: peer (data seed %d) never settled out of reconstruction", dataSeed)
		}
		det.Process(tail[i%len(tail)])
	}
	state, err := det.ExportMergeState()
	if err != nil {
		return nil, 0, err
	}
	return state, probeMean(m, probe), nil
}

// coopRecovery drives one arm: replay the target until its drift
// detection, optionally seed the rebuilding model with the peers'
// states, then count post-detection samples until the probe mean drops
// under the recovery threshold.
func coopRecovery(scenario string, seed uint64, peerStates [][]byte, thresh float64) (detectAt, recovery int, err error) {
	st, trainX, trainY := coopStream(scenario, seed)
	det, m, _, err := coopDetector(trainX, trainY, seed)
	if err != nil {
		return 0, 0, err
	}
	detectAt = -1
	for i, x := range st.X {
		if det.Process(x).DriftDetected {
			detectAt = i
			break
		}
	}
	if detectAt < 0 {
		return 0, 0, fmt.Errorf("eval: target never detected the %s drift", scenario)
	}
	if len(peerStates) > 0 {
		if err := det.MergeSeed(peerStates); err != nil {
			return 0, 0, fmt.Errorf("eval: warm seed: %w", err)
		}
	}
	probe := st.X[len(st.X)-coopProbeLen:]
	tail := st.X[len(st.X)-coopTailLen:]
	rest := st.X[detectAt+1:]
	feed := func(i int) []float64 {
		if i < len(rest) {
			return rest[i]
		}
		return tail[(i-len(rest))%len(tail)]
	}
	recovery = -1
	for i := 0; i < coopBudget; i++ {
		if i%coopCheckEvery == 0 && probeMean(m, probe) <= thresh {
			recovery = i
			break
		}
		det.Process(feed(i))
	}
	return detectAt, recovery, nil
}

// RunCoop runs the full per-stream vs cooperative recovery comparison.
// The reoccurring scenario is deliberately absent: its drifted concept
// lasts 50 samples and then the old concept returns, so there is no
// sustained post-drift competence to recover — cooperation targets
// drifts that stay.
func RunCoop(seed uint64) (*CoopComparison, error) {
	out := &CoopComparison{
		Seed:       seed,
		PeerCount:  coopPeers,
		ProbeLen:   coopProbeLen,
		CheckEvery: coopCheckEvery,
		Budget:     coopBudget,
	}
	for _, scenario := range []string{"sudden", "gradual"} {
		st, _, _ := coopStream(scenario, seed)
		probe := st.X[len(st.X)-coopProbeLen:]
		var states [][]byte
		peerLevel := 0.0
		for p := 0; p < coopPeers; p++ {
			state, level, err := adaptPeer(scenario, seed+1+uint64(p), seed, probe)
			if err != nil {
				return nil, err
			}
			states = append(states, state)
			peerLevel += level
		}
		thresh := coopMargin * peerLevel / float64(coopPeers)
		coldAt, cold, err := coopRecovery(scenario, seed, nil, thresh)
		if err != nil {
			return nil, err
		}
		warmAt, warm, err := coopRecovery(scenario, seed, states, thresh)
		if err != nil {
			return nil, err
		}
		if warmAt != coldAt {
			return nil, fmt.Errorf("eval: %s: arms diverged before the seed (detect at %d vs %d)", scenario, coldAt, warmAt)
		}
		out.Scenarios = append(out.Scenarios, CoopScenario{
			Scenario:            scenario,
			Window:              coopWindow,
			Peers:               coopPeers,
			DetectAt:            coldAt,
			ColdRecoverySamples: cold,
			WarmRecoverySamples: warm,
			ProbeThreshold:      thresh,
		})
	}
	return out, nil
}

// ExtensionCoop is the registry wrapper: the same comparison rendered
// as a table.
func ExtensionCoop(seed uint64) *Outcome {
	cmp, err := RunCoop(seed)
	if err != nil {
		panic(err)
	}
	return CoopOutcome(cmp)
}

// CoopOutcome renders an already-computed comparison, so the benchmark
// command does not run the streams twice.
func CoopOutcome(cmp *CoopComparison) *Outcome {
	t := &Table{
		Title:   "Extension: cooperative warm recovery vs per-stream cold rebuild (cooling fan)",
		Columns: []string{"scenario", "detected at", "cold recovery (samples)", "warm recovery (samples)"},
		Notes: []string{
			fmt.Sprintf("recovery = post-detection samples until the mean anomaly score of a %d-sample post-drift probe reaches adapted-peer competence (within %d%%)", coopProbeLen, int(coopMargin*100)-100),
			fmt.Sprintf("warm arm seeds the rebuilding model with the closed-form merge of %d already-adapted cohort peers at the detection instant", coopPeers),
		},
	}
	for _, s := range cmp.Scenarios {
		t.AddRow(s.Scenario, s.DetectAt, recoveryCell(s.ColdRecoverySamples), recoveryCell(s.WarmRecoverySamples))
	}
	return &Outcome{Tables: []*Table{t}}
}

func recoveryCell(n int) string {
	if n < 0 {
		return fmt.Sprintf("> %d", coopBudget)
	}
	return fmt.Sprintf("%d", n)
}

package eval

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: a title, column headers and
// string rows. It formats as aligned ASCII for the terminal and as CSV
// for downstream plotting.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are free-form caveats appended under the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// trimFloat renders floats compactly with up to 2 decimals.
func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "-0" || s == "" {
		s = "0"
	}
	return s
}

// String renders the aligned ASCII table.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (title and notes omitted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(cell, ",\"\n") {
				cell = "\"" + strings.ReplaceAll(cell, "\"", "\"\"") + "\""
			}
			b.WriteString(cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is one named line of a figure: y values at x positions.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// SeriesCSV renders aligned series as CSV with a shared x column. The
// series may have different lengths; missing cells are left empty.
func SeriesCSV(xName string, series []Series) string {
	var b strings.Builder
	b.WriteString(xName)
	maxLen := 0
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
		if len(s.X) > maxLen {
			maxLen = len(s.X)
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		wroteX := false
		var row strings.Builder
		for _, s := range series {
			row.WriteByte(',')
			if i < len(s.Y) {
				if !wroteX {
					wroteX = true
				}
				fmt.Fprintf(&row, "%g", s.Y[i])
			}
		}
		// Use the first series that still has an x value at i.
		x := ""
		for _, s := range series {
			if i < len(s.X) {
				x = fmt.Sprintf("%g", s.X[i])
				break
			}
		}
		b.WriteString(x)
		b.WriteString(row.String())
		b.WriteByte('\n')
	}
	return b.String()
}

package eval

import (
	"fmt"
	"runtime"
	"sync"
)

// Pool is a bounded worker pool with first-error propagation, used to
// run independent experiment and method evaluations concurrently. Each
// submitted task must own all of its mutable state (models, detectors,
// RNG streams); the experiment drivers satisfy this by construction —
// every method evaluation builds its own model from its own seed and
// only shares immutable dataset slices.
//
// Determinism is preserved: concurrency changes scheduling, never the
// per-task computation, and results are written to pre-assigned slots
// rather than appended.
type Pool struct {
	sem chan struct{}
	wg  sync.WaitGroup

	mu  sync.Mutex
	err error
}

// NewPool returns a pool running at most workers tasks at once;
// workers <= 0 means GOMAXPROCS.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// Go schedules fn, blocking while all workers are busy (so a huge task
// list never materialises a goroutine per task). The first non-nil
// error is retained for Wait; a panicking task is recovered into an
// error rather than killing the process from an unjoinable goroutine.
func (p *Pool) Go(fn func() error) {
	p.wg.Add(1)
	p.sem <- struct{}{}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.setErr(fmt.Errorf("eval: task panicked: %v", r))
			}
			<-p.sem
			p.wg.Done()
		}()
		if err := fn(); err != nil {
			p.setErr(err)
		}
	}()
}

func (p *Pool) setErr(err error) {
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
}

// Wait blocks until every scheduled task has finished and returns the
// first error any of them produced. The pool is reusable after Wait
// (the retained error is cleared).
func (p *Pool) Wait() error {
	p.wg.Wait()
	p.mu.Lock()
	err := p.err
	p.err = nil
	p.mu.Unlock()
	return err
}

// ParallelErr runs the closures concurrently, bounded by GOMAXPROCS,
// and returns the first error.
func ParallelErr(fns ...func() error) error {
	p := NewPool(0)
	for _, fn := range fns {
		p.Go(fn)
	}
	return p.Wait()
}

// Parallel runs the given closures concurrently, bounded by GOMAXPROCS,
// and returns when all have finished. It panics if a closure panics —
// the historical behaviour callers of this helper rely on.
func Parallel(fns ...func()) {
	err := ParallelErr(func() []func() error {
		out := make([]func() error, len(fns))
		for i, fn := range fns {
			fn := fn
			out[i] = func() error { fn(); return nil }
		}
		return out
	}()...)
	if err != nil {
		panic(err)
	}
}

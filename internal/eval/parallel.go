package eval

import (
	"runtime"
	"sync"
)

// Parallel runs the given closures concurrently, bounded by GOMAXPROCS,
// and returns when all have finished. Each closure must own all of its
// mutable state (models, detectors, RNG streams); the experiment drivers
// satisfy this by construction — every method evaluation builds its own
// model from its own seed and only shares immutable dataset slices.
//
// Determinism is preserved: concurrency changes scheduling, never the
// per-closure computation, and results are written to pre-assigned
// slots rather than appended.
func Parallel(fns ...func()) {
	limit := runtime.GOMAXPROCS(0)
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		sem <- struct{}{}
		go func(f func()) {
			defer func() {
				<-sem
				wg.Done()
			}()
			f()
		}(fn)
	}
	wg.Wait()
}

// Package eval is the experiment harness: it runs the five evaluated
// method combinations over drifting streams, measures accuracy,
// detection delay, memory and (modelled) execution time, and renders the
// paper's tables and figure series.
package eval

// LabelMapper resolves predicted cluster identities to ground-truth
// labels by online majority vote.
//
// The discriminative model's instances carry true-label semantics only
// until the first reconstruction; afterwards they are clusters of the new
// concept with arbitrary ids. Accuracy against ground truth therefore
// uses the causal mapping "predicted id → the true label it has most
// often co-occurred with so far", re-anchored whenever the model is
// rebuilt. This is how a deployed unsupervised system's outputs would be
// scored, and it never peeks ahead.
type LabelMapper struct {
	counts [][]int // [predicted][true]
}

// NewLabelMapper returns a mapper for the given predicted and true label
// counts.
func NewLabelMapper(predClasses, trueClasses int) *LabelMapper {
	m := &LabelMapper{counts: make([][]int, predClasses)}
	for i := range m.counts {
		m.counts[i] = make([]int, trueClasses)
	}
	return m
}

// Observe records a co-occurrence AFTER the caller has scored the sample
// with Map (keeping the mapping causal).
func (m *LabelMapper) Observe(pred, truth int) {
	m.counts[pred][truth]++
}

// Map returns the ground-truth label currently associated with the
// predicted id. With no evidence it falls back to the identity mapping
// (clamped), which is exact before any reconstruction.
func (m *LabelMapper) Map(pred int) int {
	row := m.counts[pred]
	best, bestN := -1, 0
	for t, n := range row {
		if n > bestN {
			best, bestN = t, n
		}
	}
	if best == -1 {
		if pred < len(row) {
			return pred
		}
		return 0
	}
	return best
}

// Reset clears the evidence, typically after a model reconstruction
// reassigns cluster identities.
func (m *LabelMapper) Reset() {
	for i := range m.counts {
		for j := range m.counts[i] {
			m.counts[i][j] = 0
		}
	}
}

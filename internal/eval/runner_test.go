package eval

import (
	"testing"

	"edgedrift/internal/core"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/detectors/quanttree"
	"edgedrift/internal/model"
	"edgedrift/internal/rng"
)

// driftScenario builds a 4-D two-class stream with a sudden drift, a
// trained model factory and calibration data.
type driftScenario struct {
	trainX  [][]float64
	trainY  []int
	streamX [][]float64
	streamY []int
	driftAt int
}

func newScenario(t *testing.T, seed uint64) *driftScenario {
	t.Helper()
	pre := synth.NewGaussian([][]float64{{0, 0, 0, 0}, {5, 5, 5, 5}}, 0.3)
	post := synth.ShiftedGaussian(pre, 4)
	r := rng.New(seed)
	trainX, trainY := synth.TrainingSet(pre, 400, r)
	st, err := synth.Generate(pre, post, 3000, synth.Spec{Kind: synth.Sudden, Start: 1000}, r)
	if err != nil {
		t.Fatal(err)
	}
	return &driftScenario{trainX: trainX, trainY: trainY, streamX: st.X, streamY: st.Labels, driftAt: 1000}
}

func (s *driftScenario) newModel(t *testing.T, seed uint64, forgetting float64) *model.Multi {
	t.Helper()
	m, err := model.New(model.Config{Classes: 2, Inputs: 4, Hidden: 8, Ridge: 1e-2, Forgetting: forgetting}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InitSequential(s.trainX, s.trainY); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunStaticDegradesAfterDrift(t *testing.T) {
	sc := newScenario(t, 1)
	res := RunStatic(sc.newModel(t, 1, 1), sc.streamX, sc.streamY, RunConfig{DriftAt: sc.driftAt})
	if res.PreDrift < 0.95 {
		t.Fatalf("pre-drift accuracy %v", res.PreDrift)
	}
	if res.PostDrift >= res.PreDrift {
		t.Fatalf("static model should degrade: pre %v post %v", res.PreDrift, res.PostDrift)
	}
	if res.Delay != -1 || len(res.Detections) != 0 {
		t.Fatal("static runner must not detect anything")
	}
	if res.MemoryBytes <= 0 || res.Ops.Total() == 0 {
		t.Fatal("missing accounting")
	}
	if len(res.Trace.Y) == 0 {
		t.Fatal("missing trace")
	}
}

func TestRunProposedDetectsAndRecovers(t *testing.T) {
	sc := newScenario(t, 2)
	m := sc.newModel(t, 2, 1)
	cfg := core.DefaultConfig(50)
	cfg.NRecon = 300
	det, err := core.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Calibrate(sc.trainX, sc.trainY); err != nil {
		t.Fatal(err)
	}
	res := RunProposed(det, sc.streamX, sc.streamY, RunConfig{DriftAt: sc.driftAt})
	if res.Delay < 0 {
		t.Fatal("proposed method never detected the drift")
	}
	if res.Delay > 1000 {
		t.Fatalf("delay %d too long", res.Delay)
	}
	if res.Reconstructions < 1 {
		t.Fatal("no reconstruction")
	}
	static := RunStatic(sc.newModel(t, 2, 1), sc.streamX, sc.streamY, RunConfig{DriftAt: sc.driftAt})
	if res.PostDrift <= static.PostDrift {
		t.Fatalf("proposed post-drift %v not better than static %v", res.PostDrift, static.PostDrift)
	}
	if res.DetectorBytes <= 0 || res.DetectorBytes >= res.MemoryBytes {
		t.Fatalf("detector bytes %d of %d", res.DetectorBytes, res.MemoryBytes)
	}
}

func TestRunONLADTrainsEverySample(t *testing.T) {
	sc := newScenario(t, 3)
	m := sc.newModel(t, 3, 0.97)
	before := m.Instance(0).SamplesSeen() + m.Instance(1).SamplesSeen()
	res := RunONLAD(m, sc.streamX, sc.streamY, RunConfig{DriftAt: sc.driftAt})
	after := m.Instance(0).SamplesSeen() + m.Instance(1).SamplesSeen()
	if after-before != len(sc.streamX) {
		t.Fatalf("ONLAD trained %d of %d samples", after-before, len(sc.streamX))
	}
	if res.Name == "" || len(res.Trace.Y) == 0 {
		t.Fatal("result incomplete")
	}
}

func TestRunBatchDetectsAndAdapts(t *testing.T) {
	sc := newScenario(t, 4)
	m := sc.newModel(t, 4, 1)
	qt, err := quanttree.New(sc.trainX, quanttree.Config{Bins: 8, BatchSize: 100, CalibrationTrials: 300}, rng.New(40))
	if err != nil {
		t.Fatal(err)
	}
	res := RunBatch("qt", m, qt, sc.streamX, sc.streamY, RunConfig{DriftAt: sc.driftAt}, rng.New(41))
	if res.Delay < 0 {
		t.Fatal("batch method never detected")
	}
	// Detection lands on a batch boundary after the drift.
	if res.Delay >= 2*100 {
		t.Fatalf("batch delay %d exceeds two batches", res.Delay)
	}
	if res.Reconstructions < 1 {
		t.Fatal("no batch adaptation")
	}
	if res.PostDrift < 0.8 {
		t.Fatalf("batch adaptation failed: post-drift %v", res.PostDrift)
	}
	if res.DetectorBytes != qt.MemoryBytes() {
		t.Fatal("detector bytes should be the observer's")
	}
}

func TestComputeDelay(t *testing.T) {
	if computeDelay(nil, 100) != -1 {
		t.Fatal("no detections → -1")
	}
	if computeDelay([]int{50}, 100) != -1 {
		t.Fatal("pre-drift detection must not count")
	}
	if computeDelay([]int{50, 130, 200}, 100) != 30 {
		t.Fatal("first post-drift detection wins")
	}
	if computeDelay([]int{130}, -1) != -1 {
		t.Fatal("unknown drift point → -1")
	}
}

func TestRunConfigDefaults(t *testing.T) {
	c := RunConfig{}.withDefaults()
	if c.TraceWindow != 200 || c.TraceEvery != 50 || c.DriftAt != -1 {
		t.Fatalf("defaults: %+v", c)
	}
	c2 := RunConfig{DriftAt: 5}.withDefaults()
	if c2.DriftAt != 5 {
		t.Fatal("explicit DriftAt overridden")
	}
}

func TestUnlabelledStreams(t *testing.T) {
	sc := newScenario(t, 5)
	m := sc.newModel(t, 5, 1)
	res := RunStatic(m, sc.streamX, nil, RunConfig{DriftAt: sc.driftAt})
	if res.Accuracy != 0 || len(res.Trace.Y) != 0 {
		t.Fatal("unlabelled run must not fabricate accuracy")
	}
}

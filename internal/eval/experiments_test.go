package eval

import (
	"strconv"
	"strings"
	"testing"
)

func TestRegistryAndLookup(t *testing.T) {
	reg := Registry()
	wantIDs := []string{"fig1", "fig3", "fig4", "table2", "table3", "table4", "table5", "table6"}
	if len(reg) != len(wantIDs) {
		t.Fatalf("registry size %d", len(reg))
	}
	for i, id := range wantIDs {
		if reg[i].ID != id {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].ID, id)
		}
		if reg[i].Run == nil || reg[i].Title == "" {
			t.Fatalf("experiment %s incomplete", id)
		}
		e, ok := Lookup(id)
		if !ok || e.ID != id {
			t.Fatalf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup of unknown id succeeded")
	}
}

func TestFigure1Shapes(t *testing.T) {
	out := Figure1(1)
	if len(out.Figures) != 1 || len(out.Figures[0].Series) != 4 {
		t.Fatal("figure 1 must have four series")
	}
	tab := out.Tables[0]
	if len(tab.Rows) != 4 {
		t.Fatalf("summary rows %d", len(tab.Rows))
	}
	cell := func(r, c int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[r][c], 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) = %q", r, c, tab.Rows[r][c])
		}
		return v
	}
	for r := 0; r < 4; r++ {
		pre := cell(r, 1)
		if pre < -0.3 || pre > 0.3 {
			t.Fatalf("row %d pre-drift mean %v", r, pre)
		}
	}
	// Sudden/gradual/incremental end at the new concept (≈4); the
	// reoccurring stream returns to the old one (≈0).
	for r := 0; r < 3; r++ {
		if end := cell(r, 3); end < 3.5 {
			t.Fatalf("row %d end mean %v, want ≈4", r, end)
		}
	}
	if end := cell(3, 3); end > 0.5 {
		t.Fatalf("reoccurring end mean %v, want ≈0", end)
	}
	// Transition means: gradual and incremental sit between concepts.
	for _, r := range []int{1, 2} {
		if mid := cell(r, 2); mid < 1 || mid > 3 {
			t.Fatalf("row %d transition mean %v, want between concepts", r, mid)
		}
	}
}

// TestTable3Shape is the cooling-fan headline: sudden delays grow with
// the window, gradual delays exceed sudden ones, and the reoccurring
// drift escapes the largest window. (Table 2 / Figure 4 shapes are
// exercised by the repo-level benchmark harness — they need the full
// 22,701-sample stream and are too slow for the unit suite.)
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out := Table3(1)
	tab := out.Tables[0]
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	parse := func(cell string) (int, bool) {
		if cell == "-" {
			return 0, false
		}
		v, err := strconv.Atoi(cell)
		if err != nil {
			t.Fatalf("bad delay cell %q", cell)
		}
		return v, true
	}
	sud10, ok10 := parse(tab.Rows[0][1])
	sud150, ok150 := parse(tab.Rows[2][1])
	if !ok10 || !ok150 || sud10 >= sud150 {
		t.Fatalf("sudden delays not growing with window: %v vs %v", tab.Rows[0][1], tab.Rows[2][1])
	}
	grad10, okg := parse(tab.Rows[0][2])
	if !okg || grad10 <= sud10 {
		t.Fatalf("gradual delay %v not above sudden %v", grad10, sud10)
	}
	if _, detected := parse(tab.Rows[2][3]); detected {
		t.Fatal("reoccurring drift must escape W=150")
	}
	if _, detected := parse(tab.Rows[0][3]); !detected {
		t.Fatal("reoccurring drift must be caught at W=10")
	}
}

func TestTable4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out := Table4(1)
	tab := out.Tables[0]
	kb := func(r int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[r][1], 64)
		if err != nil {
			t.Fatalf("cell %q", tab.Rows[r][1])
		}
		return v
	}
	qt, sp, prop := kb(0), kb(1), kb(2)
	if !(sp > qt && qt > prop) {
		t.Fatalf("memory ordering wrong: SPLL %v, QT %v, proposed %v", sp, qt, prop)
	}
	if sp < 20*prop {
		t.Fatalf("proposed should save well over 90%%: %v vs %v", prop, sp)
	}
	if tab.Rows[2][2] != "yes" || tab.Rows[0][2] != "no" || tab.Rows[1][2] != "no" {
		t.Fatalf("Pico fit column wrong: %v", tab.Rows)
	}
}

func TestTable5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out := Table5(1)
	tab := out.Tables[0]
	sec := func(r int) float64 {
		v, err := strconv.ParseFloat(tab.Rows[r][1], 64)
		if err != nil {
			t.Fatalf("cell %q", tab.Rows[r][1])
		}
		return v
	}
	qt, sp, base, prop := sec(0), sec(1), sec(2), sec(3)
	if sp < 3*qt || sp < 3*prop {
		t.Fatalf("SPLL must dominate: %v vs %v/%v", sp, qt, prop)
	}
	if prop < base {
		t.Fatalf("proposed %v cannot undercut the baseline %v", prop, base)
	}
	if prop > 2*base {
		t.Fatalf("proposed %v overhead beyond 2× baseline %v", prop, base)
	}
}

func TestTable6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out := Table6(1)
	tab := out.Tables[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("rows %d", len(tab.Rows))
	}
	ms := map[string]float64{}
	for _, row := range tab.Rows {
		if row[1] == "-" {
			continue
		}
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("cell %q", row[1])
		}
		ms[row[0]] = v
	}
	pred := ms["label prediction"]
	if pred < 75 || pred > 300 {
		t.Fatalf("label prediction %v ms, want ≈150", pred)
	}
	// The paper's claim: detection overhead (distance computation) is
	// well below label prediction.
	if dist := ms["distance computation"]; dist >= pred/3 {
		t.Fatalf("distance %v not ≪ prediction %v", dist, pred)
	}
	if upd := ms["label coordinates update"]; upd >= pred/3 {
		t.Fatalf("coordinate update %v not ≪ prediction %v", upd, pred)
	}
}

func TestFigure4SummaryColumns(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	t.Skip("full NSL-KDD stream; covered by the repo benchmark harness")
}

func TestExperimentTablesRenderWithoutPanic(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	out := Figure1(2)
	for _, tab := range out.Tables {
		if s := tab.String(); !strings.Contains(s, "drift") {
			t.Fatalf("render: %s", s)
		}
		if tab.CSV() == "" {
			t.Fatal("empty CSV")
		}
	}
}

package router

import (
	"sort"
	"strconv"
)

// ring is a consistent-hash ring: each shard contributes vnodes points
// (FNV-1a 64 over "addr#i") and a stream lands on the first point at or
// after its own hash, wrapping around. Adding a shard therefore only
// remaps the streams that fall between its new points and their
// predecessors — about 1/N of the keyspace.
type ring struct {
	points []point // sorted by hash
}

type point struct {
	hash uint64
	addr string
}

func newRing(addrs []string, vnodes int) *ring {
	r := &ring{points: make([]point, 0, len(addrs)*vnodes)}
	for _, addr := range addrs {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{
				hash: fnv1a(addr + "#" + strconv.Itoa(i)),
				addr: addr,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// lookup maps a stream to its shard.
func (r *ring) lookup(stream string) string {
	h := fnv1a(stream)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].addr
}

// fnv1a is 64-bit FNV-1a with an avalanche finalizer. Bare FNV keeps
// similar strings close together ("addr#0".."addr#63" land in one tight
// cluster), which collapses a ring's vnode spread — the mixer scatters
// the points uniformly.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

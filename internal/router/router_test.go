package router

import (
	"bytes"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"edgedrift"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
	"edgedrift/internal/shard"
	"edgedrift/internal/wire"
)

func TestRingPlacement(t *testing.T) {
	shards := []string{"10.0.0.1:7600", "10.0.0.2:7600", "10.0.0.3:7600"}
	r := newRing(shards, 64)
	owned := map[string]int{}
	placed := map[string]string{}
	for i := 0; i < 300; i++ {
		s := fmt.Sprintf("stream-%d", i)
		addr := r.lookup(s)
		if r.lookup(s) != addr {
			t.Fatal("lookup is not deterministic")
		}
		owned[addr]++
		placed[s] = addr
	}
	for _, a := range shards {
		if owned[a] == 0 {
			t.Fatalf("shard %s owns no streams: %v", a, owned)
		}
	}
	// Adding a shard must remap only a minority of streams.
	grown := newRing(append(append([]string(nil), shards...), "10.0.0.4:7600"), 64)
	moved := 0
	for s, was := range placed {
		if grown.lookup(s) != was {
			moved++
		}
	}
	if moved == 0 || moved > 150 {
		t.Fatalf("adding a 4th shard moved %d/300 streams, want ~75", moved)
	}
}

// testTemplate trains a small monitor on synthetic Gaussian data and
// returns its artifact plus a drifted stream to replay.
func testTemplate(t testing.TB) (template []byte, stream [][]float64) {
	t.Helper()
	oldC := synth.NewGaussian([][]float64{{0, 0, 0}, {5, 5, 5}}, 0.3)
	newC := synth.ShiftedGaussian(oldC, 4)
	r := rng.New(7)
	trainX, trainY := synth.TrainingSet(oldC, 300, r)
	st, err := synth.Generate(oldC, newC, 2000, synth.Spec{Kind: synth.Sudden, Start: 1000}, r)
	if err != nil {
		t.Fatal(err)
	}
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: 3, Hidden: 8, Window: 50, NRecon: 300, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := mon.Fit(trainX, trainY); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := mon.Save(&buf, edgedrift.Float64); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), st.X
}

// startTier spins up n shards and a router over them, all on ephemeral
// ports, and returns the router plus the shard addresses.
func startTier(t *testing.T, n int, template []byte) (*Router, string, []string) {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		s, err := shard.New(shard.Config{Template: template})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() { s.Close() })
		addrs[i] = ln.Addr().String()
	}
	r, err := New(Config{Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Close() })
	return r, ln.Addr().String(), addrs
}

// localReference replays the template locally for one stream.
func localReference(t testing.TB, template []byte) *edgedrift.Fleet {
	t.Helper()
	f := edgedrift.NewFleet(edgedrift.FleetConfig{})
	mon, err := edgedrift.LoadMonitor(bytes.NewReader(template))
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add("ref", mon); err != nil {
		t.Fatal(err)
	}
	return f
}

// TestRouterEndToEnd is the distributed tier's integration test: two
// shards behind a router, four streams driven concurrently through it,
// one stream live-migrated mid-stream. Every result — including the
// whole post-migration tail — must be bit-identical to a local,
// never-migrated replay, with zero lost or double-counted samples.
func TestRouterEndToEnd(t *testing.T) {
	template, stream := testTemplate(t)
	r, addr, shards := startTier(t, 2, template)

	const nStreams, batchLen, total = 4, 100, 2000
	var wg sync.WaitGroup
	errs := make(chan error, nStreams)
	for i := 0; i < nStreams; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("s%d", i)
			cl, err := wire.DialClient(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			ref := localReference(t, template)
			for off := 0; off < total; off += batchLen {
				// Stream s1 migrates to the other shard at sample 800 —
				// mid-stream, pre-drift, at a batch boundary.
				if i == 1 && off == 800 {
					from := r.Where(id)
					to := shards[0]
					if from == to {
						to = shards[1]
					}
					if err := r.Migrate(id, to); err != nil {
						errs <- err
						return
					}
					if r.Where(id) != to {
						errs <- fmt.Errorf("routing table not flipped for %s", id)
						return
					}
				}
				xs := stream[off : off+batchLen]
				got, shed, err := cl.SendBatch(nil, id, xs)
				if err != nil {
					errs <- fmt.Errorf("%s@%d: %w", id, off, err)
					return
				}
				if shed != 0 {
					errs <- fmt.Errorf("%s@%d: %d samples shed under backpressure policy", id, off, shed)
					return
				}
				want, err := ref.ProcessBatch("ref", xs)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("%s@%d: routed results diverge from local replay", id, off)
					return
				}
			}
			errs <- nil
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Conservation across the whole tier: every sample sent was
	// processed exactly once, and exactly one migration happened.
	st, err := r.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples != nStreams*total {
		t.Fatalf("tier processed %d samples, sent %d", st.Samples, nStreams*total)
	}
	if st.ShedSamples != 0 || st.ShedBatches != 0 {
		t.Fatalf("unexpected shedding: %+v", st)
	}
	if st.MigratedOut != 1 || st.MigratedIn != 1 {
		t.Fatalf("migration counters: out=%d in=%d, want 1/1", st.MigratedOut, st.MigratedIn)
	}
	if st.Streams != nStreams {
		t.Fatalf("tier has %d streams, want %d", st.Streams, nStreams)
	}

	// The migrated stream must sit off its ring placement — migration
	// overrides consistent hashing — while the others stay on theirs.
	table := r.Streams()
	if table["s1"] == r.ring.lookup("s1") {
		t.Fatalf("s1 still on its ring home %s after migration", table["s1"])
	}
	for _, id := range []string{"s0", "s2", "s3"} {
		if table[id] != r.ring.lookup(id) {
			t.Fatalf("%s moved off its ring home without a migration", id)
		}
	}
}

// TestMigrateRejectsAndRecovers pins the failure paths: an unknown
// target is refused outright, and a checkpoint-refused export (member
// mid-reconstruction) leaves the stream serving on its source shard.
func TestMigrateRejectsAndRecovers(t *testing.T) {
	template, stream := testTemplate(t)
	r, addr, shards := startTier(t, 2, template)

	if err := r.Migrate("s", "127.0.0.1:1"); err == nil {
		t.Fatal("migration to an unknown shard accepted")
	}

	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ref := localReference(t, template)
	check := func(xs [][]float64) {
		t.Helper()
		got, _, err := cl.SendBatch(nil, "s", xs)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.ProcessBatch("ref", xs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatal("results diverge from local replay")
		}
	}
	// Drive into reconstruction (drift at 1000, NRecon 300): the export
	// must be refused at a mid-reconstruction boundary.
	for off := 0; off < 1200; off += 100 {
		check(stream[off : off+100])
	}
	home := r.Where("s")
	to := shards[0]
	if home == to {
		to = shards[1]
	}
	err = r.Migrate("s", to)
	if err == nil {
		t.Fatal("export mid-reconstruction should be refused")
	}
	if !strings.Contains(err.Error(), "reconstruction") {
		t.Fatalf("unexpected migrate error: %v", err)
	}
	if r.Where("s") != home {
		t.Fatal("failed migration flipped the routing entry")
	}
	// The stream keeps serving, bit-identically, on its source.
	for off := 1200; off < 2000; off += 100 {
		check(stream[off : off+100])
	}
}

// TestAdminHandler drives the control plane over HTTP: migrate a
// stream, read the routing table, scrape metrics.
func TestAdminHandler(t *testing.T) {
	template, stream := testTemplate(t)
	r, addr, shards := startTier(t, 2, template)
	admin := httptest.NewServer(r.AdminHandler())
	defer admin.Close()

	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, _, err := cl.SendBatch(nil, "web", stream[:100]); err != nil {
		t.Fatal(err)
	}

	to := shards[0]
	if r.Where("web") == to {
		to = shards[1]
	}
	resp, err := http.PostForm(admin.URL+"/migrate", url.Values{"stream": {"web"}, "to": {to}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/migrate -> %s", resp.Status)
	}
	if r.Where("web") != to {
		t.Fatal("admin migrate did not move the stream")
	}

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get(admin.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return buf.String()
	}
	if got := get("/streams"); !strings.Contains(got, "web "+to) {
		t.Fatalf("/streams = %q, want web on %s", got, to)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		"edgedrift_route_batches_total 1",
		"edgedrift_route_migrations_total 1",
		"edgedrift_route_shards 2",
		"edgedrift_route_streams 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestCrossShardRecovery is the cooperative tier's integration test:
// cohort-configured shards behind a router, peer streams serving
// concurrently while the router fetches their states non-destructively
// and seeds the target under its entry fence. Run under -race.
func TestCrossShardRecovery(t *testing.T) {
	template, stream := testTemplate(t)
	addrs := make([]string, 2)
	for i := range addrs {
		s, err := shard.New(shard.Config{Template: template, Cohort: "fans"})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() { s.Close() })
		addrs[i] = ln.Addr().String()
	}
	r, err := New(Config{Shards: addrs})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go r.Serve(ln)
	t.Cleanup(func() { r.Close() })
	addr := ln.Addr().String()

	cl, err := wire.DialClient(addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ids := []string{"t", "p0", "p1"}
	for _, id := range ids {
		if _, _, err := cl.SendBatch(nil, id, stream[:400]); err != nil {
			t.Fatal(err)
		}
	}
	// Force the recovery across shards: make sure at least one peer
	// lives on a different shard than the target.
	if r.Where("p0") == r.Where("t") && r.Where("p1") == r.Where("t") {
		to := addrs[0]
		if r.Where("p1") == to {
			to = addrs[1]
		}
		if err := r.Migrate("p1", to); err != nil {
			t.Fatal(err)
		}
	}

	// Peers keep serving (bit-identically) while their state is being
	// fetched: drive them concurrently with the recovery.
	var wg sync.WaitGroup
	errs := make(chan error, len(ids))
	for _, id := range []string{"p0", "p1"} {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			pcl, err := wire.DialClient(addr, 2*time.Second)
			if err != nil {
				errs <- err
				return
			}
			defer pcl.Close()
			ref := localReference(t, template)
			if _, err := ref.ProcessBatch("ref", stream[:400]); err != nil {
				errs <- err
				return
			}
			for off := 400; off < 900; off += 100 {
				xs := stream[off : off+100]
				got, _, err := pcl.SendBatch(nil, id, xs)
				if err != nil {
					errs <- fmt.Errorf("%s@%d: %w", id, off, err)
					return
				}
				want, err := ref.ProcessBatch("ref", xs)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs <- fmt.Errorf("%s@%d: donor results diverge during recovery", id, off)
					return
				}
			}
			errs <- nil
		}(id)
	}
	for i := 0; i < 3; i++ {
		if err := r.Recover("t", []string{"p0", "p1"}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := r.recoveries.Load(); got != 3 {
		t.Fatalf("recoveries = %d, want 3", got)
	}
	// The recovered stream keeps serving through the router.
	if _, _, err := cl.SendBatch(nil, "t", stream[400:500]); err != nil {
		t.Fatalf("recovered stream stopped serving: %v", err)
	}

	// Failure paths: unknown peer, and a self-only peer list.
	if err := r.Recover("t", []string{"nosuch"}); err == nil {
		t.Fatal("recovery from an unknown peer succeeded")
	}
	if err := r.Recover("t", []string{"t"}); err == nil {
		t.Fatal("self-recovery collected zero states but succeeded")
	}

	// The admin endpoint drives the same path.
	admin := httptest.NewServer(r.AdminHandler())
	defer admin.Close()
	resp, err := http.PostForm(admin.URL+"/recover",
		url.Values{"stream": {"t"}, "peers": {"p0,p1"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/recover -> %s", resp.Status)
	}
	mresp, err := http.Get(admin.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mbuf bytes.Buffer
	mbuf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(mbuf.String(), "edgedrift_route_recoveries_total 4") {
		t.Fatalf("metrics missing recovery counter:\n%s", mbuf.String())
	}
}

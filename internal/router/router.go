// Package router is the front half of the distributed serve tier: a
// consistent-hash router that places streams on shard processes
// (internal/shard) and relays wire batch frames to them. Clients speak
// the same protocol to the router as to a shard, so a single-shard
// deployment can drop the router with no client change.
//
// Placement starts on a consistent-hash ring (FNV-1a over addr#vnode
// points) so adding a shard only remaps ~1/N of the streams, and is
// then overridden per stream by live migration: Migrate exports the
// member from its current shard (sample-boundary checkpoint under the
// fleet's Do fence), imports it on the target, and flips the routing
// entry. The per-stream entry lock fences this against the forwarding
// path — forwards hold it shared, migration exclusively — so no batch
// for the moving stream is in flight anywhere between export and
// import, which is what makes the continuation bit-identical with zero
// lost or double-counted samples.
//
// The hot path is a zero-copy relay: the router parses only the batch
// header (for the stream name), forwards the raw payload to the owning
// shard over a pooled connection, and relays the reply frame verbatim.
package router

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"edgedrift/internal/metrics"
	"edgedrift/internal/wire"
)

// Config parameterises a router.
type Config struct {
	// Shards lists the shard addresses the ring is built over. Required.
	Shards []string
	// Vnodes is the number of ring points per shard; 0 means 64.
	Vnodes int
	// PoolSize bounds the idle connection pool per shard; 0 means 4.
	PoolSize int
	// DialTimeout applies to shard dials; 0 means 5s.
	DialTimeout time.Duration
	// Logf receives router lifecycle logs; nil means log.Printf.
	Logf func(format string, args ...any)
}

// Router relays wire frames from clients to the shard owning each
// stream and orchestrates live stream migration.
type Router struct {
	cfg  Config
	ring *ring

	mu      sync.Mutex
	streams map[string]*entry
	pools   map[string]*pool

	ln     net.Listener
	closed atomic.Bool
	wg     sync.WaitGroup

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	batches     metrics.Counter
	forwardErrs metrics.Counter
	migrations  metrics.Counter
	recoveries  metrics.Counter
	connections atomic.Int64
}

// entry is one stream's routing state. Forwards hold mu shared while a
// batch is in flight; Migrate holds it exclusively, so the export/
// import round-trip observes a quiesced stream.
type entry struct {
	mu   sync.RWMutex
	addr string
}

// New builds a router over the given shard set (not yet listening).
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("router: config needs at least one shard address")
	}
	if cfg.Vnodes <= 0 {
		cfg.Vnodes = 64
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 4
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	r := &Router{
		cfg:     cfg,
		ring:    newRing(cfg.Shards, cfg.Vnodes),
		streams: map[string]*entry{},
		pools:   map[string]*pool{},
		conns:   map[net.Conn]struct{}{},
	}
	for _, addr := range cfg.Shards {
		r.pools[addr] = &pool{addr: addr, timeout: cfg.DialTimeout,
			ch: make(chan *wire.Conn, cfg.PoolSize)}
	}
	return r, nil
}

// entryFor returns the stream's routing entry, creating it from the
// ring on first sight.
func (r *Router) entryFor(stream string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.streams[stream]
	if !ok {
		e = &entry{addr: r.ring.lookup(stream)}
		r.streams[stream] = e
	}
	return e
}

// Where reports which shard currently owns a stream (resolving the
// placement if the stream is unseen).
func (r *Router) Where(stream string) string { return r.entryFor(stream).addr }

// Streams snapshots the routing table: stream -> shard address.
func (r *Router) Streams() map[string]string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]string, len(r.streams))
	for s, e := range r.streams {
		out[s] = e.addr
	}
	return out
}

// Serve accepts client connections on ln until Close. It always
// returns a non-nil error (net.ErrClosed after a clean Close).
func (r *Router) Serve(ln net.Listener) error {
	r.connMu.Lock()
	r.ln = ln
	r.connMu.Unlock()
	if r.closed.Load() { // Close raced ahead of us
		ln.Close()
		return net.ErrClosed
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			if r.closed.Load() {
				return net.ErrClosed
			}
			return err
		}
		r.connMu.Lock()
		r.conns[nc] = struct{}{}
		r.connMu.Unlock()
		r.connections.Add(1)
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer func() {
				r.connMu.Lock()
				delete(r.conns, nc)
				r.connMu.Unlock()
				r.connections.Add(-1)
				nc.Close()
			}()
			r.serveConn(wire.NewConn(nc))
		}()
	}
}

// Close stops accepting, closes live client connections and drains the
// shard pools.
func (r *Router) Close() error {
	if !r.closed.CompareAndSwap(false, true) {
		return nil
	}
	var err error
	r.connMu.Lock()
	if r.ln != nil {
		err = r.ln.Close()
	}
	for nc := range r.conns {
		nc.Close()
	}
	r.connMu.Unlock()
	r.wg.Wait()
	r.mu.Lock()
	for _, p := range r.pools {
		p.drain()
	}
	r.mu.Unlock()
	return err
}

// serveConn relays one client connection's request/reply traffic.
func (r *Router) serveConn(c *wire.Conn) {
	if err := c.AcceptHandshake(); err != nil {
		return
	}
	for {
		typ, p, err := c.ReadFrame()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !r.closed.Load() {
				r.cfg.Logf("router: connection error: %v", err)
			}
			return
		}
		switch typ {
		case wire.TypeBatch:
			if !r.forward(c, p) {
				return
			}
		case wire.TypeStats:
			st, err := r.Stats()
			if err != nil {
				if c.WriteFrame(wire.TypeError, []byte(err.Error())) != nil {
					return
				}
				continue
			}
			if c.WriteFrame(wire.TypeStatsReply, wire.AppendStats(nil, st)) != nil {
				return
			}
		default:
			// Migration is orchestrated by the router itself (admin API);
			// clients cannot move streams through the data plane.
			c.WriteFrame(wire.TypeError, []byte(fmt.Sprintf("router: unexpected frame type %#x", typ)))
			return
		}
	}
}

// forward relays one batch frame to the owning shard and its reply
// (ack, shed or error) back verbatim. Returns false when the client
// connection is dead.
func (r *Router) forward(c *wire.Conn, p []byte) bool {
	b, err := wire.ParseBatch(p)
	if err != nil {
		return c.WriteFrame(wire.TypeError, []byte(err.Error())) == nil
	}
	e := r.entryFor(b.Stream)
	e.mu.RLock()
	typ, reply, err := r.exchange(e.addr, wire.TypeBatch, p)
	e.mu.RUnlock()
	if err != nil {
		r.forwardErrs.Inc()
		return c.WriteFrame(wire.TypeError, []byte(fmt.Sprintf("router: shard %s: %v", e.addr, err))) == nil
	}
	r.batches.Inc()
	return c.WriteFrame(typ, reply) == nil
}

// exchange runs one request/reply round-trip against a shard over a
// pooled connection. The reply payload is copied (the pooled conn's
// read buffer must not escape the call). There is no automatic retry:
// once the request may have been received, retrying could double-count
// samples.
func (r *Router) exchange(addr string, typ byte, payload []byte) (byte, []byte, error) {
	pl := r.poolFor(addr)
	sc, err := pl.get()
	if err != nil {
		return 0, nil, err
	}
	if err := sc.WriteFrame(typ, payload); err != nil {
		sc.Close()
		return 0, nil, err
	}
	rtyp, reply, err := sc.ReadFrame()
	if err != nil {
		sc.Close()
		return 0, nil, err
	}
	reply = append([]byte(nil), reply...)
	pl.put(sc)
	return rtyp, reply, nil
}

func (r *Router) poolFor(addr string) *pool {
	r.mu.Lock()
	defer r.mu.Unlock()
	p, ok := r.pools[addr]
	if !ok {
		p = &pool{addr: addr, timeout: r.cfg.DialTimeout,
			ch: make(chan *wire.Conn, r.cfg.PoolSize)}
		r.pools[addr] = p
	}
	return p
}

// knownShard reports whether addr is in the configured shard set.
func (r *Router) knownShard(addr string) bool {
	for _, a := range r.cfg.Shards {
		if a == addr {
			return true
		}
	}
	return false
}

// Migrate moves a live stream to another shard: checkpoint round-trip
// (export on the source under the fleet's Do fence, import on the
// target with lifetime counters carried over), then flip the routing
// entry. The entry's exclusive lock guarantees no batch for the stream
// is in flight anywhere during the move, so the continuation on the
// target is bit-identical and no sample is lost or double-counted.
func (r *Router) Migrate(stream, to string) error {
	if !r.knownShard(to) {
		return fmt.Errorf("router: migrate %q: unknown target shard %q", stream, to)
	}
	e := r.entryFor(stream)
	e.mu.Lock()
	defer e.mu.Unlock()
	from := e.addr
	if from == to {
		return nil
	}
	st, err := r.migrateOut(from, stream)
	if err != nil {
		return fmt.Errorf("router: migrate %q out of %s: %w", stream, from, err)
	}
	if err := r.migrateIn(to, st); err != nil {
		// The member is currently homeless: best-effort re-import on the
		// source so the stream keeps serving there.
		if rerr := r.migrateIn(from, st); rerr != nil {
			return fmt.Errorf("router: migrate %q: import on %s failed (%v) AND re-import on %s failed (%v) — stream is offline, checkpoint lost",
				stream, to, err, from, rerr)
		}
		return fmt.Errorf("router: migrate %q into %s: %w (re-imported on %s)", stream, to, err, from)
	}
	e.addr = to
	r.migrations.Inc()
	return nil
}

func (r *Router) migrateOut(addr, stream string) (wire.State, error) {
	pl := r.poolFor(addr)
	sc, err := pl.get()
	if err != nil {
		return wire.State{}, err
	}
	st, err := wire.NewClient(sc).MigrateOut(stream)
	if err != nil {
		// A RemoteError leaves the connection in protocol sync; anything
		// else means the conn state is unknown.
		var re *wire.RemoteError
		if errors.As(err, &re) {
			pl.put(sc)
		} else {
			sc.Close()
		}
		return wire.State{}, err
	}
	pl.put(sc)
	return st, nil
}

func (r *Router) migrateIn(addr string, st wire.State) error {
	pl := r.poolFor(addr)
	sc, err := pl.get()
	if err != nil {
		return err
	}
	err = wire.NewClient(sc).MigrateIn(st)
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			pl.put(sc)
		} else {
			sc.Close()
		}
		return err
	}
	pl.put(sc)
	return nil
}

// Recover re-seeds a drifted stream's model from the mergeable states
// of cohort peer streams, wherever the shards own them — the cross-
// shard form of the fleet's warm recovery. Each peer's state is fetched
// non-destructively under the peer entry's shared lock (its batches
// keep flowing; the donor shard snapshots at a sample boundary), then
// the combined seed is pushed to the target stream's shard under the
// target entry's exclusive lock, so no batch for the recovering stream
// is in flight anywhere while its model is replaced — the same fence
// that makes migration exact. Peer fingerprints must agree with each
// other (checked here) and with the target (checked by its shard).
func (r *Router) Recover(stream string, peers []string) error {
	var states [][]byte
	var fprint uint64
	for _, p := range peers {
		if p == stream {
			continue // the target's own post-drift state is not a donor
		}
		pe := r.entryFor(p)
		pe.mu.RLock()
		addr := pe.addr
		ms, err := r.fetchState(addr, p)
		pe.mu.RUnlock()
		if err != nil {
			return fmt.Errorf("router: recover %q: fetch state of peer %q from %s: %w", stream, p, addr, err)
		}
		if fprint == 0 {
			fprint = ms.Fingerprint
		} else if ms.Fingerprint != fprint {
			return fmt.Errorf("router: recover %q: peer %q fingerprint %#x disagrees with %#x — not one cohort",
				stream, p, ms.Fingerprint, fprint)
		}
		states = append(states, ms.States...)
	}
	if len(states) == 0 {
		return fmt.Errorf("router: recover %q: no peer states collected", stream)
	}
	e := r.entryFor(stream)
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := r.mergeSeed(e.addr, wire.MergeStates{
		Stream:      stream,
		Fingerprint: fprint,
		States:      states,
	}); err != nil {
		return fmt.Errorf("router: recover %q on %s: %w", stream, e.addr, err)
	}
	r.recoveries.Inc()
	return nil
}

func (r *Router) fetchState(addr, stream string) (wire.MergeStates, error) {
	pl := r.poolFor(addr)
	sc, err := pl.get()
	if err != nil {
		return wire.MergeStates{}, err
	}
	ms, err := wire.NewClient(sc).FetchState(stream)
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			pl.put(sc)
		} else {
			sc.Close()
		}
		return wire.MergeStates{}, err
	}
	pl.put(sc)
	return ms, nil
}

func (r *Router) mergeSeed(addr string, ms wire.MergeStates) error {
	pl := r.poolFor(addr)
	sc, err := pl.get()
	if err != nil {
		return err
	}
	err = wire.NewClient(sc).MergeSeed(ms)
	if err != nil {
		var re *wire.RemoteError
		if errors.As(err, &re) {
			pl.put(sc)
		} else {
			sc.Close()
		}
		return err
	}
	pl.put(sc)
	return nil
}

// Stats aggregates the counter snapshots of every shard.
func (r *Router) Stats() (wire.Stats, error) {
	var agg wire.Stats
	for _, addr := range r.cfg.Shards {
		pl := r.poolFor(addr)
		sc, err := pl.get()
		if err != nil {
			return agg, fmt.Errorf("router: stats from %s: %w", addr, err)
		}
		st, err := wire.NewClient(sc).Stats()
		if err != nil {
			sc.Close()
			return agg, fmt.Errorf("router: stats from %s: %w", addr, err)
		}
		pl.put(sc)
		agg.Streams += st.Streams
		agg.Samples += st.Samples
		agg.Drifts += st.Drifts
		agg.Batches += st.Batches
		agg.ShedSamples += st.ShedSamples
		agg.ShedBatches += st.ShedBatches
		agg.MigratedIn += st.MigratedIn
		agg.MigratedOut += st.MigratedOut
		agg.QueueDepth += st.QueueDepth
		agg.Degraded += st.Degraded
		agg.Demotions += st.Demotions
		agg.Promotions += st.Promotions
		agg.TransitionFailures += st.TransitionFailures
		// Latency does not sum: the tier's p99 is its worst shard's.
		if st.IngestP99Ns > agg.IngestP99Ns {
			agg.IngestP99Ns = st.IngestP99Ns
		}
	}
	return agg, nil
}

// WriteMetrics renders the router's Prometheus exposition.
func (r *Router) WriteMetrics(w io.Writer) error {
	r.mu.Lock()
	nStreams := len(r.streams)
	r.mu.Unlock()
	tw := metrics.NewTextWriter(w)
	tw.Counter("edgedrift_route_batches_total", "Batches relayed to shards.", nil, r.batches.Load())
	tw.Counter("edgedrift_route_forward_errors_total", "Batch relays that failed against the shard.", nil, r.forwardErrs.Load())
	tw.Counter("edgedrift_route_migrations_total", "Live stream migrations completed.", nil, r.migrations.Load())
	tw.Counter("edgedrift_route_recoveries_total", "Cross-shard warm recoveries completed.", nil, r.recoveries.Load())
	tw.Gauge("edgedrift_route_shards", "Shards in the ring.", nil, float64(len(r.cfg.Shards)))
	tw.Gauge("edgedrift_route_streams", "Streams in the routing table.", nil, float64(nStreams))
	tw.Gauge("edgedrift_route_connections", "Live client connections.", nil, float64(r.connections.Load()))
	return tw.Err()
}

// AdminHandler serves the router's control plane:
//
//	POST /migrate?stream=S&to=ADDR        live-migrate a stream
//	POST /recover?stream=S&peers=A,B,...  warm-recover a stream from peers
//	GET  /streams                         routing table, one "stream addr" per line
//	GET  /metrics                         Prometheus exposition
func (r *Router) AdminHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/migrate", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		stream, to := req.FormValue("stream"), req.FormValue("to")
		if stream == "" || to == "" {
			http.Error(w, "need stream= and to=", http.StatusBadRequest)
			return
		}
		if err := r.Migrate(stream, to); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fmt.Fprintf(w, "migrated %s -> %s\n", stream, to)
	})
	mux.HandleFunc("/recover", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		stream, peers := req.FormValue("stream"), req.FormValue("peers")
		if stream == "" || peers == "" {
			http.Error(w, "need stream= and peers= (comma-separated)", http.StatusBadRequest)
			return
		}
		if err := r.Recover(stream, strings.Split(peers, ",")); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fmt.Fprintf(w, "recovered %s from %s\n", stream, peers)
	})
	mux.HandleFunc("/streams", func(w http.ResponseWriter, req *http.Request) {
		table := r.Streams()
		streams := make([]string, 0, len(table))
		for s := range table {
			streams = append(streams, s)
		}
		sort.Strings(streams)
		for _, s := range streams {
			fmt.Fprintf(w, "%s %s\n", s, table[s])
		}
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

// pool is a bounded idle-connection pool for one shard.
type pool struct {
	addr    string
	timeout time.Duration
	ch      chan *wire.Conn
}

// get returns an idle connection or dials a fresh one.
func (p *pool) get() (*wire.Conn, error) {
	select {
	case c := <-p.ch:
		return c, nil
	default:
	}
	return wire.Dial(p.addr, p.timeout)
}

// put parks a healthy connection, or closes it when the pool is full.
func (p *pool) put(c *wire.Conn) {
	select {
	case p.ch <- c:
	default:
		c.Close()
	}
}

// drain closes every idle connection.
func (p *pool) drain() {
	for {
		select {
		case c := <-p.ch:
			c.Close()
		default:
			return
		}
	}
}

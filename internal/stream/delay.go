package stream

import (
	"fmt"
	"math"
	"strings"

	"edgedrift/internal/rng"
)

// DelayKind selects the distribution a label's arrival delay is drawn
// from. Real edge deployments never see labels with the sample: an
// operator confirms an anomaly hours later (roughly fixed delay), a
// batch audit samples the log (uniform), or a ticket queue drains with
// memoryless service times (geometric).
type DelayKind int

const (
	// DelayFixed delivers every label exactly Delay steps late.
	DelayFixed DelayKind = iota
	// DelayUniform draws each delay uniformly from [0, 2·Delay], so the
	// mean delay is Delay.
	DelayUniform
	// DelayGeometric draws each delay from a geometric distribution
	// with mean Delay (success probability 1/(Delay+1)).
	DelayGeometric
)

// String implements fmt.Stringer.
func (k DelayKind) String() string {
	switch k {
	case DelayFixed:
		return "fixed"
	case DelayUniform:
		return "uniform"
	case DelayGeometric:
		return "geometric"
	default:
		return "unknown"
	}
}

// ParseDelayKind maps the CLI spelling to a DelayKind.
func ParseDelayKind(s string) (DelayKind, error) {
	switch strings.ToLower(s) {
	case "fixed":
		return DelayFixed, nil
	case "uniform":
		return DelayUniform, nil
	case "geometric":
		return DelayGeometric, nil
	default:
		return 0, fmt.Errorf("stream: unknown delay kind %q (fixed, uniform, geometric)", s)
	}
}

// DelaySpec configures the delayed-label replay model: how late each
// sample's label arrives, and what fraction of labels arrive at all.
type DelaySpec struct {
	// Kind is the delay distribution.
	Kind DelayKind
	// Delay is the fixed delay (DelayFixed) or the mean delay
	// (DelayUniform, DelayGeometric), in stream steps. Zero means
	// labels arrive with their sample.
	Delay int
	// Budget is the fraction of labels that ever arrive, in (0, 1];
	// zero means 1 (every label arrives). The complement is dropped
	// before the delay draw — those samples are simply never labelled.
	Budget float64
	// Seed drives the schedule's own generator, so the same spec over
	// the same stream always yields the same arrivals regardless of
	// what other randomness the experiment consumes.
	Seed uint64
}

// Arrival is one label landing: the label of sample Index becomes
// known to the learner at the schedule step it was bucketed under.
type Arrival struct {
	Index int
	Label int
}

// DelaySchedule is a materialised delayed-label replay for one stream:
// every labelled sample either gets an arrival step (its own index plus
// a drawn delay) or is dropped by the label budget. The schedule is
// computed once up front so replaying it is allocation-free and
// deterministic — runners call At(t) after processing sample t and feed
// whatever arrives to the supervised side channel.
type DelaySchedule struct {
	arrivals [][]Arrival
	observed int
	dropped  int
	expired  int
}

// NewDelaySchedule draws the arrival schedule for a labelled stream.
// labels[i] is sample i's ground-truth label; the returned schedule is
// len(labels) steps long. Labels whose drawn arrival falls past the end
// of the stream expire: they count as never arriving, exactly like an
// audit result that lands after the deployment moved on.
func NewDelaySchedule(labels []int, spec DelaySpec) (*DelaySchedule, error) {
	if len(labels) == 0 {
		return nil, fmt.Errorf("stream: delay schedule over an unlabelled stream")
	}
	if spec.Delay < 0 {
		return nil, fmt.Errorf("stream: negative label delay %d", spec.Delay)
	}
	if spec.Budget < 0 || spec.Budget > 1 {
		return nil, fmt.Errorf("stream: label budget %v outside [0, 1]", spec.Budget)
	}
	budget := spec.Budget
	if budget == 0 {
		budget = 1
	}
	n := len(labels)
	s := &DelaySchedule{arrivals: make([][]Arrival, n)}
	r := rng.New(spec.Seed)
	for i, lab := range labels {
		// Draw the budget coin and the delay unconditionally so the
		// schedule for sample i does not depend on the fate of samples
		// before it — comparable across budgets at one seed.
		keep := budget >= 1 || r.Bernoulli(budget)
		d := drawDelay(spec, r)
		if !keep {
			s.dropped++
			continue
		}
		at := i + d
		if at >= n {
			s.expired++
			continue
		}
		s.observed++
		s.arrivals[at] = append(s.arrivals[at], Arrival{Index: i, Label: lab})
	}
	return s, nil
}

// drawDelay draws one delay from the spec's distribution.
func drawDelay(spec DelaySpec, r *rng.Rand) int {
	if spec.Delay == 0 {
		return 0
	}
	switch spec.Kind {
	case DelayUniform:
		return r.Intn(2*spec.Delay + 1)
	case DelayGeometric:
		// Inverse-CDF sample of Geometric(p) on {0, 1, ...} with mean
		// Delay = (1-p)/p, i.e. p = 1/(Delay+1). Float64 is in [0, 1),
		// so the log argument stays in (0, 1].
		p := 1 / (float64(spec.Delay) + 1)
		return int(math.Log(1-r.Float64()) / math.Log(1-p))
	default:
		return spec.Delay
	}
}

// Len returns the schedule length in steps (the stream length).
func (s *DelaySchedule) Len() int { return len(s.arrivals) }

// At returns the labels arriving at step t — meant to be consumed after
// the learner has processed sample t, so a zero-delay label is usable
// one step after its sample, never before it. The slice is owned by the
// schedule; callers must not retain it across steps.
func (s *DelaySchedule) At(t int) []Arrival {
	if t < 0 || t >= len(s.arrivals) {
		return nil
	}
	return s.arrivals[t]
}

// Observed returns how many labels arrive within the stream.
func (s *DelaySchedule) Observed() int { return s.observed }

// Dropped returns how many labels the budget removed entirely.
func (s *DelaySchedule) Dropped() int { return s.dropped }

// Expired returns how many labels were kept by the budget but drawn to
// arrive after the stream ends.
func (s *DelaySchedule) Expired() int { return s.expired }

// Package stream provides labelled-stream I/O and replay utilities: CSV
// loading/saving in the layout cmd/datagen emits, and iteration helpers
// the CLI tools use to feed monitors.
//
// The CSV layout is one row per sample: feature columns (any names),
// optionally followed by a final integer column named "label". This is
// deliberately the least-structured format that round-trips through
// spreadsheet tools, so users can evaluate the library on their own data
// — including the real NSL-KDD or cooling-fan datasets the paper used —
// without writing Go.
package stream

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
)

// ErrNonFinite reports a CSV feature cell that parsed as NaN or ±Inf.
// Such values used to pass the parser and only surface downstream as
// guard rejections with the CSV line number lost; rejecting them here
// keeps the provenance in the error.
var ErrNonFinite = errors.New("stream: non-finite feature value")

// Data is a labelled (or unlabelled) sample stream held in memory.
type Data struct {
	// X[i] is sample i.
	X [][]float64
	// Y[i] is sample i's integer label; nil when the stream is
	// unlabelled.
	Y []int
	// FeatureNames are the CSV column headers (excluding "label").
	FeatureNames []string
}

// Dims returns the feature dimension (0 for an empty stream).
func (d *Data) Dims() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Len returns the number of samples.
func (d *Data) Len() int { return len(d.X) }

// Labelled reports whether the stream carries labels.
func (d *Data) Labelled() bool { return d.Y != nil }

// Slice returns the half-open sub-stream [lo, hi).
func (d *Data) Slice(lo, hi int) *Data {
	out := &Data{X: d.X[lo:hi], FeatureNames: d.FeatureNames}
	if d.Y != nil {
		out.Y = d.Y[lo:hi]
	}
	return out
}

// ReadCSV parses a sample stream. The first row must be a header; a
// trailing "label" column (exact name) becomes Y.
func ReadCSV(r io.Reader) (*Data, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("stream: read header: %w", err)
	}
	if len(header) == 0 {
		return nil, fmt.Errorf("stream: empty header")
	}
	hasLabel := header[len(header)-1] == "label"
	dims := len(header)
	if hasLabel {
		dims--
	}
	if dims == 0 {
		return nil, fmt.Errorf("stream: no feature columns")
	}
	d := &Data{FeatureNames: append([]string(nil), header[:dims]...)}
	if hasLabel {
		d.Y = []int{}
	}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			return nil, fmt.Errorf("stream: line %d: %w", line, err)
		}
		if len(rec) != len(header) {
			return nil, fmt.Errorf("stream: line %d has %d fields, want %d", line, len(rec), len(header))
		}
		x := make([]float64, dims)
		for j := 0; j < dims; j++ {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d column %q: %w", line, header[j], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("stream: line %d column %q: %w %q", line, header[j], ErrNonFinite, rec[j])
			}
			x[j] = v
		}
		d.X = append(d.X, x)
		if hasLabel {
			lab, err := strconv.Atoi(rec[dims])
			if err != nil {
				return nil, fmt.Errorf("stream: line %d label: %w", line, err)
			}
			d.Y = append(d.Y, lab)
		}
	}
	return d, nil
}

// WriteCSV emits the stream in the layout ReadCSV parses. Feature names
// default to f0..fN when the stream has none.
func WriteCSV(w io.Writer, d *Data) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	dims := d.Dims()
	names := d.FeatureNames
	if len(names) != dims {
		names = make([]string, dims)
		for j := range names {
			names[j] = fmt.Sprintf("f%d", j)
		}
	}
	header := append([]string(nil), names...)
	if d.Labelled() {
		header = append(header, "label")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 0, dims+1)
	for i, x := range d.X {
		row = row[:0]
		for _, v := range x {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if d.Labelled() {
			row = append(row, strconv.Itoa(d.Y[i]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Standardizer rescales features to zero mean and unit variance using
// statistics fitted on a reference (training) stream — the usual
// preprocessing before OS-ELM training, since random-projection networks
// are scale-sensitive.
type Standardizer struct {
	Mean []float64
	Std  []float64
}

// FitStandardizer computes per-feature statistics over xs. Features with
// zero variance get Std 1 so they pass through unchanged.
func FitStandardizer(xs [][]float64) (*Standardizer, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("stream: FitStandardizer on empty data")
	}
	dims := len(xs[0])
	s := &Standardizer{Mean: make([]float64, dims), Std: make([]float64, dims)}
	for _, x := range xs {
		if len(x) != dims {
			return nil, fmt.Errorf("stream: ragged data")
		}
		for j, v := range x {
			s.Mean[j] += v
		}
	}
	n := float64(len(xs))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, x := range xs {
		for j, v := range x {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return s, nil
}

// Apply standardises x in place and returns it.
func (s *Standardizer) Apply(x []float64) []float64 {
	for j := range x {
		x[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
	return x
}

// ApplyAll standardises every sample in place.
func (s *Standardizer) ApplyAll(xs [][]float64) {
	for _, x := range xs {
		s.Apply(x)
	}
}

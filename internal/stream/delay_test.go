package stream

import (
	"testing"
)

func allOnes(n int) []int {
	ys := make([]int, n)
	for i := range ys {
		ys[i] = 1
	}
	return ys
}

// TestDelayFixed: with a fixed delay every kept label arrives exactly
// Delay steps after its sample, and late-stream labels expire.
func TestDelayFixed(t *testing.T) {
	const n, d = 100, 7
	s, err := NewDelaySchedule(allOnes(n), DelaySpec{Kind: DelayFixed, Delay: d, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for step := 0; step < n; step++ {
		arr := s.At(step)
		if step < d {
			if len(arr) != 0 {
				t.Fatalf("step %d: %d arrivals before any delay elapsed", step, len(arr))
			}
			continue
		}
		if len(arr) != 1 || arr[0].Index != step-d || arr[0].Label != 1 {
			t.Fatalf("step %d: arrivals = %v, want index %d", step, arr, step-d)
		}
	}
	if s.Observed() != n-d || s.Expired() != d || s.Dropped() != 0 {
		t.Fatalf("observed/expired/dropped = %d/%d/%d, want %d/%d/0",
			s.Observed(), s.Expired(), s.Dropped(), n-d, d)
	}
}

// TestDelayZero: a zero delay schedules every label at its own step —
// consumed after Process, so prequential ordering is preserved.
func TestDelayZero(t *testing.T) {
	s, err := NewDelaySchedule([]int{4, 5, 6}, DelaySpec{})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{4, 5, 6} {
		arr := s.At(i)
		if len(arr) != 1 || arr[0].Index != i || arr[0].Label != want {
			t.Fatalf("step %d: arrivals = %v", i, arr)
		}
	}
}

// TestDelayDeterministic: the same spec must produce the identical
// schedule; a different seed must not.
func TestDelayDeterministic(t *testing.T) {
	ys := allOnes(500)
	spec := DelaySpec{Kind: DelayGeometric, Delay: 20, Budget: 0.5, Seed: 11}
	a, err := NewDelaySchedule(ys, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDelaySchedule(ys, spec)
	if err != nil {
		t.Fatal(err)
	}
	for step := range ys {
		av, bv := a.At(step), b.At(step)
		if len(av) != len(bv) {
			t.Fatalf("step %d: %d vs %d arrivals for one spec", step, len(av), len(bv))
		}
		for k := range av {
			if av[k] != bv[k] {
				t.Fatalf("step %d arrival %d: %v vs %v", step, k, av[k], bv[k])
			}
		}
	}
	spec.Seed = 12
	c, err := NewDelaySchedule(ys, spec)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for step := range ys {
		if len(a.At(step)) != len(c.At(step)) {
			same = false
			break
		}
	}
	if same && a.Observed() == c.Observed() && a.Dropped() == c.Dropped() {
		t.Fatal("different seeds produced an identical-looking schedule")
	}
}

// TestDelayBudget: the kept fraction tracks the budget, and the rest is
// dropped rather than delayed.
func TestDelayBudget(t *testing.T) {
	const n = 4000
	s, err := NewDelaySchedule(allOnes(n), DelaySpec{Kind: DelayFixed, Delay: 0, Budget: 0.25, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	kept := float64(s.Observed()) / n
	if kept < 0.20 || kept > 0.30 {
		t.Fatalf("kept fraction = %.3f, want ≈ 0.25", kept)
	}
	if s.Observed()+s.Dropped()+s.Expired() != n {
		t.Fatalf("accounting leak: %d+%d+%d != %d", s.Observed(), s.Dropped(), s.Expired(), n)
	}
}

// TestDelayMeans: uniform and geometric draws land near the requested
// mean delay over a long stream.
func TestDelayMeans(t *testing.T) {
	const n, mean = 20000, 10
	for _, kind := range []DelayKind{DelayUniform, DelayGeometric} {
		s, err := NewDelaySchedule(allOnes(n), DelaySpec{Kind: kind, Delay: mean, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var sum, cnt float64
		for step := 0; step < n; step++ {
			for _, a := range s.At(step) {
				sum += float64(step - a.Index)
				cnt++
			}
		}
		got := sum / cnt
		if got < 0.8*mean || got > 1.2*mean {
			t.Fatalf("%v: mean delay = %.2f, want ≈ %d", kind, got, mean)
		}
	}
}

// TestDelaySpecErrors: invalid specs and unlabelled streams fail.
func TestDelaySpecErrors(t *testing.T) {
	if _, err := NewDelaySchedule(nil, DelaySpec{}); err == nil {
		t.Fatal("empty stream accepted")
	}
	if _, err := NewDelaySchedule(allOnes(5), DelaySpec{Delay: -1}); err == nil {
		t.Fatal("negative delay accepted")
	}
	if _, err := NewDelaySchedule(allOnes(5), DelaySpec{Budget: 1.5}); err == nil {
		t.Fatal("budget > 1 accepted")
	}
}

// TestParseDelayKind round-trips the CLI spellings.
func TestParseDelayKind(t *testing.T) {
	for _, k := range []DelayKind{DelayFixed, DelayUniform, DelayGeometric} {
		got, err := ParseDelayKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseDelayKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseDelayKind("bogus"); err == nil {
		t.Fatal("bogus kind accepted")
	}
}

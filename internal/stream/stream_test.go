package stream

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestReadCSVLabelled(t *testing.T) {
	in := "a,b,label\n1,2,0\n3.5,-4,1\n"
	d, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Dims() != 2 || !d.Labelled() {
		t.Fatalf("shape: %d×%d labelled=%v", d.Len(), d.Dims(), d.Labelled())
	}
	if d.X[1][0] != 3.5 || d.X[1][1] != -4 || d.Y[1] != 1 {
		t.Fatalf("row 1 = %v label %d", d.X[1], d.Y[1])
	}
	if d.FeatureNames[0] != "a" || d.FeatureNames[1] != "b" {
		t.Fatalf("names = %v", d.FeatureNames)
	}
}

func TestReadCSVUnlabelled(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("x,y\n1,2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Labelled() {
		t.Fatal("should be unlabelled")
	}
	if d.Dims() != 2 {
		t.Fatalf("dims %d", d.Dims())
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                    // no header
		"label\n1\n",          // label only, no features
		"a,b,label\n1,2\n",    // ragged row
		"a,label\nnotnum,0\n", // bad float
		"a,label\n1,notint\n", // bad label
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("case %d: expected error for %q", i, in)
		}
	}
}

// TestReadCSVNonFinite: NaN and ±Inf parse fine as floats, but a
// monitor fed them only rejects downstream with the CSV provenance
// lost — the parser must refuse them with a line-numbered error that
// matches ErrNonFinite.
func TestReadCSVNonFinite(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"NaN", "a,b,label\n1,2,0\n3,NaN,1\n"},
		{"Inf", "a,b,label\n1,2,0\nInf,4,1\n"},
		{"negative Inf", "a,b\n1,-Inf\n"},
		{"infinity spelled out", "a,b\n-Infinity,2\n"},
	}
	for _, c := range cases {
		_, err := ReadCSV(strings.NewReader(c.in))
		if !errors.Is(err, ErrNonFinite) {
			t.Fatalf("%s: err = %v, want ErrNonFinite", c.name, err)
		}
		if !strings.Contains(err.Error(), "line 3") && !strings.Contains(err.Error(), "line 2") {
			t.Fatalf("%s: error lost the line number: %v", c.name, err)
		}
	}
	// Finite values in the same layout still parse.
	if _, err := ReadCSV(strings.NewReader("a,b,label\n1,2,0\n3,4,1\n")); err != nil {
		t.Fatalf("finite stream rejected: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	d := &Data{
		X:            [][]float64{{1.25, -3}, {0, 42}},
		Y:            []int{1, 0},
		FeatureNames: []string{"alpha", "beta"},
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 || got.Dims() != 2 {
		t.Fatalf("shape %d×%d", got.Len(), got.Dims())
	}
	for i := range d.X {
		for j := range d.X[i] {
			if got.X[i][j] != d.X[i][j] {
				t.Fatalf("X[%d][%d] = %v", i, j, got.X[i][j])
			}
		}
		if got.Y[i] != d.Y[i] {
			t.Fatalf("Y[%d] = %d", i, got.Y[i])
		}
	}
	if got.FeatureNames[0] != "alpha" {
		t.Fatalf("names %v", got.FeatureNames)
	}
}

func TestWriteCSVDefaultNames(t *testing.T) {
	d := &Data{X: [][]float64{{1, 2, 3}}}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "f0,f1,f2\n") {
		t.Fatalf("header: %q", buf.String())
	}
}

func TestSlice(t *testing.T) {
	d := &Data{X: [][]float64{{0}, {1}, {2}, {3}}, Y: []int{0, 1, 0, 1}}
	s := d.Slice(1, 3)
	if s.Len() != 2 || s.X[0][0] != 1 || s.Y[1] != 0 {
		t.Fatalf("slice = %+v", s)
	}
	u := (&Data{X: d.X}).Slice(0, 2)
	if u.Labelled() {
		t.Fatal("unlabelled slice grew labels")
	}
}

func TestStandardizer(t *testing.T) {
	xs := [][]float64{{0, 10, 5}, {2, 10, 7}, {4, 10, 9}}
	s, err := FitStandardizer(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean[0] != 2 || s.Mean[2] != 7 {
		t.Fatalf("mean %v", s.Mean)
	}
	// Constant feature keeps Std 1.
	if s.Std[1] != 1 {
		t.Fatalf("constant-feature std %v", s.Std[1])
	}
	cp := make([][]float64, len(xs))
	for i, x := range xs {
		cp[i] = append([]float64(nil), x...)
	}
	s.ApplyAll(cp)
	var mean0, var0 float64
	for _, x := range cp {
		mean0 += x[0]
	}
	mean0 /= 3
	for _, x := range cp {
		var0 += (x[0] - mean0) * (x[0] - mean0)
	}
	var0 /= 3
	if math.Abs(mean0) > 1e-12 || math.Abs(var0-1) > 1e-12 {
		t.Fatalf("standardised moments %v %v", mean0, var0)
	}
	// Constant feature passes through shifted by its mean.
	if cp[0][1] != 0 {
		t.Fatalf("constant feature became %v", cp[0][1])
	}
}

func TestFitStandardizerErrors(t *testing.T) {
	if _, err := FitStandardizer(nil); err == nil {
		t.Fatal("expected empty-data error")
	}
	if _, err := FitStandardizer([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("expected ragged-data error")
	}
}

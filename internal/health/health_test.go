package health

import (
	"strings"
	"testing"
)

func TestHealthy(t *testing.T) {
	s := Snapshot{PFinite: true, Rejected: 100, WatchdogResets: 3}
	if !s.Healthy() {
		t.Fatal("repaired incidents must not mark a monitor unhealthy")
	}
	s.PFinite = false
	if s.Healthy() {
		t.Fatal("non-finite live state must mark the monitor unhealthy")
	}
}

func TestStringRendersCounters(t *testing.T) {
	s := Snapshot{
		SamplesSeen: 1234, Rejected: 5, Clamped: 2, ModelDivergences: 1,
		WatchdogResets: 3, PTraceMax: 0.5, PFinite: true,
		ScoreSamples: 1200, ScoreMean: 0.25, ScoreStd: 0.1,
		ScoreHistDropped: 1, Phase: "monitoring",
	}
	out := s.String()
	for _, want := range []string{
		"phase=monitoring", "samples=1234", "rejected=5", "clamped=2",
		"divergences=1", "watchdog-resets=3", "pfinite=true", "dropped=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}

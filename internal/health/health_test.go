package health

import (
	"strings"
	"testing"
)

func TestHealthy(t *testing.T) {
	s := Snapshot{PFinite: true, Rejected: 100, WatchdogResets: 3}
	if !s.Healthy() {
		t.Fatal("repaired incidents must not mark a monitor unhealthy")
	}
	s.PFinite = false
	if s.Healthy() {
		t.Fatal("non-finite live state must mark the monitor unhealthy")
	}
}

// TestAggregateSingleMemberRoundTrip locks the degenerate roll-up: one
// member aggregates to exactly itself (values chosen so the pooled
// E[x²]−E[x]² variance path is float-exact).
func TestAggregateSingleMemberRoundTrip(t *testing.T) {
	s := Snapshot{
		SamplesSeen: 42, Rejected: 3, Clamped: 1, ModelDivergences: 2,
		WatchdogResets: 4, PTraceMax: 1.5, PFinite: true,
		ScoreSamples: 40, ScoreMean: 2, ScoreStd: 3,
		ScoreHistDropped: 1, ScoreHistTotal: 39, Phase: "checking",
	}
	if got := Aggregate([]Snapshot{s}); got != s {
		t.Fatalf("single-member aggregate:\n got %+v\nwant %+v", got, s)
	}
}

// TestAggregateZeroVariance locks the v > 0 guard: members that agree
// on a constant score pool to ScoreStd exactly 0, even when floating-
// point cancellation makes the pooled variance a tiny negative number.
func TestAggregateZeroVariance(t *testing.T) {
	members := []Snapshot{
		{ScoreSamples: 100, ScoreMean: 0.3, ScoreStd: 0, PFinite: true},
		{ScoreSamples: 300, ScoreMean: 0.3, ScoreStd: 0, PFinite: true},
		{ScoreSamples: 7, ScoreMean: 0.3, ScoreStd: 0, PFinite: true},
	}
	agg := Aggregate(members)
	if agg.ScoreMean != 0.3 && !(agg.ScoreMean > 0.2999999 && agg.ScoreMean < 0.3000001) {
		t.Fatalf("pooled mean = %v", agg.ScoreMean)
	}
	if agg.ScoreStd != 0 {
		t.Fatalf("zero-variance members pooled to ScoreStd %v, want exactly 0", agg.ScoreStd)
	}
}

// TestAggregateIgnoresScorelessMembers locks the weighting: a member
// with ScoreSamples == 0 contributes nothing to the pooled moments, no
// matter what its (meaningless) ScoreMean/ScoreStd fields hold.
func TestAggregateIgnoresScorelessMembers(t *testing.T) {
	members := []Snapshot{
		{ScoreSamples: 10, ScoreMean: 2, ScoreStd: 0, PFinite: true},
		{ScoreSamples: 0, ScoreMean: 1e9, ScoreStd: 1e9, PFinite: true}, // freshly added, never scored
	}
	agg := Aggregate(members)
	if agg.ScoreSamples != 10 || agg.ScoreMean != 2 || agg.ScoreStd != 0 {
		t.Fatalf("scoreless member skewed the pool: %+v", agg)
	}
}

// TestSnapshotStringGolden pins the exact operational log line — the
// format scraped by log pipelines, changed only deliberately.
func TestSnapshotStringGolden(t *testing.T) {
	s := Snapshot{
		SamplesSeen: 1234, Rejected: 5, Clamped: 2, ModelDivergences: 1,
		WatchdogResets: 3, PTraceMax: 0.5125, PFinite: true,
		ScoreSamples: 1200, ScoreMean: 0.25, ScoreStd: 0.125,
		ScoreHistDropped: 1, ScoreHistTotal: 1199, Phase: "monitoring",
	}
	want := "health: phase=monitoring samples=1234 rejected=5 clamped=2" +
		" divergences=1 watchdog-resets=3 ptrace=0.5125 pfinite=true" +
		" score(n=1200 mean=0.25 std=0.125 dropped=1)"
	if got := s.String(); got != want {
		t.Fatalf("String() = %q\n        want %q", got, want)
	}
}

func TestStringRendersCounters(t *testing.T) {
	s := Snapshot{
		SamplesSeen: 1234, Rejected: 5, Clamped: 2, ModelDivergences: 1,
		WatchdogResets: 3, PTraceMax: 0.5, PFinite: true,
		ScoreSamples: 1200, ScoreMean: 0.25, ScoreStd: 0.1,
		ScoreHistDropped: 1, Phase: "monitoring",
	}
	out := s.String()
	for _, want := range []string{
		"phase=monitoring", "samples=1234", "rejected=5", "clamped=2",
		"divergences=1", "watchdog-resets=3", "pfinite=true", "dropped=1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary %q missing %q", out, want)
		}
	}
}

// TestStringQuantSaturations pins the conditional rendering of the
// quantisation counter: absent at zero — keeping the golden log line of
// float deployments untouched — and rendered when any parameter clipped.
func TestStringQuantSaturations(t *testing.T) {
	s := Snapshot{SamplesSeen: 10, PFinite: true, Phase: "monitoring"}
	if strings.Contains(s.String(), "quant-sat") {
		t.Fatalf("zero-saturation summary mentions quant-sat: %q", s.String())
	}
	s.QuantSaturations = 7
	if !strings.Contains(s.String(), "quant-sat=7") {
		t.Fatalf("summary %q missing quant-sat=7", s.String())
	}
}

// TestAggregateSumsQuantSaturations pins the fleet roll-up of the
// counter across mixed-precision members.
func TestAggregateSumsQuantSaturations(t *testing.T) {
	agg := Aggregate([]Snapshot{
		{PFinite: true, QuantSaturations: 3},
		{PFinite: true},
		{PFinite: true, QuantSaturations: 4},
	})
	if agg.QuantSaturations != 7 {
		t.Fatalf("aggregate quant-sat = %d, want 7", agg.QuantSaturations)
	}
}

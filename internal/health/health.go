// Package health defines the structured health snapshot of a running
// drift monitor — the observability seam for months-long unattended
// operation on edge devices. The numerical-robustness layer (guarded
// ingestion in core, the RLS watchdog in oselm, the score histogram's
// dropped-sample accounting in stats) each contribute counters; this
// package only aggregates and renders them, so it depends on nothing
// and everything can depend on it.
package health

import (
	"fmt"
	"math"
	"strings"
)

// Snapshot is a point-in-time structured health report of a monitor.
// All counters are cumulative since the monitor was created (or loaded).
type Snapshot struct {
	// SamplesSeen counts samples accepted into the detector state
	// machine; Rejected and Clamped samples are counted separately.
	SamplesSeen int
	// Rejected counts samples refused by the Reject ingestion guard
	// (non-finite features; the sample never touched model or centroid
	// state).
	Rejected uint64
	// Clamped counts samples repaired by the Clamp ingestion guard.
	Clamped uint64
	// ModelDivergences counts monitoring samples whose anomaly score came
	// back non-finite despite finite input — the model state itself had
	// diverged — triggering the reconstruction-based recovery path.
	ModelDivergences uint64
	// WatchdogResets sums, across model instances, how many times the RLS
	// watchdog re-initialised a diverged P matrix.
	WatchdogResets uint64
	// PTraceMax is the largest tr(P) across instances, a condition proxy:
	// it starts at H/λ and shrinks as evidence accumulates.
	PTraceMax float64
	// PFinite is false if any instance's P matrix currently holds a
	// non-finite element (the watchdog will repair it within a period).
	PFinite bool
	// ScoreSamples, ScoreMean and ScoreStd summarise the anomaly scores
	// observed while monitoring — the live counterpart of the θ_error
	// calibration.
	ScoreSamples int
	ScoreMean    float64
	ScoreStd     float64
	// ScoreHistTotal and ScoreHistDropped report the monitoring-score
	// histogram: observations binned versus observations dropped as NaN.
	// A nonzero drop count means scores went non-finite at some point.
	ScoreHistDropped uint64
	ScoreHistTotal   int
	// QuantSaturations counts values (weights, centroids, thresholds)
	// that clipped to the Q16.16 range when a fixed-point stage was
	// quantised from its float source. Only fixed-point stages report it;
	// non-zero means the deployed integer port is a degraded image of the
	// model it was quantised from.
	QuantSaturations uint64
	// Merges counts closed-form state merges applied to the monitor's
	// model — cooperative seeds it accepted from fleet peers.
	Merges uint64
	// WarmRecoveries counts drift responses that seeded the rebuilt model
	// from merged cohort-peer state instead of retraining cold. Only the
	// fleet-level aggregate reports it; per-member snapshots carry 0.
	WarmRecoveries uint64
	// ColdFallbacks counts drift responses that wanted a warm seed but
	// found no compatible non-drifted cohort peer and fell back to the
	// paper's cold reconstruction. Fleet-level, like WarmRecoveries.
	ColdFallbacks uint64
	// LabelsObserved counts late ground-truth labels fed to a hybrid
	// stage's supervised side channel. Zero means labels never arrived
	// and the stage was a pure bystander.
	LabelsObserved uint64
	// SupervisedFires counts drift alarms raised by the supervised
	// error-rate arm (DDM/ADWIN over the late-label error stream).
	SupervisedFires uint64
	// SupervisedTriggers counts reconstructions the supervised arm
	// actually started (either-fires fusion; fires during an ongoing
	// reconstruction trigger nothing).
	SupervisedTriggers uint64
	// HybridConfirms counts fusion confirmations: an unsupervised and a
	// supervised alarm within the confirmation window of each other
	// (both-confirm fusion policy).
	HybridConfirms uint64
	// PoolHits counts post-drift window matches against the reoccurring
	// -drift model pool; PoolMisses counts match attempts that found no
	// fitting checkpoint and left the cold reconstruction running.
	PoolHits   uint64
	PoolMisses uint64
	// PoolRestores counts checkpointed models restored bit-exactly
	// instead of retraining (equals PoolHits unless a restore failed).
	PoolRestores uint64
	// PoolEvictions counts checkpoints the bounded LRU pool dropped.
	PoolEvictions uint64
	// Phase is the detector phase at snapshot time ("monitoring",
	// "checking", "reconstructing").
	Phase string
}

// Healthy reports whether the snapshot describes a monitor with fully
// finite state and no silent data loss in flight. Past, repaired
// incidents (rejections, watchdog resets) do not make a monitor
// unhealthy — surviving them is the point — but non-finite live state
// does.
func (s Snapshot) Healthy() bool {
	return s.PFinite
}

// phaseRank orders phase strings by operational urgency, so an
// aggregate can report the "most active" phase across members.
func phaseRank(p string) int {
	switch p {
	case "reconstructing":
		return 2
	case "checking":
		return 1
	default:
		return 0
	}
}

// Aggregate rolls per-member snapshots up into one fleet-level snapshot:
// counters sum, PTraceMax takes the member maximum, PFinite is the
// conjunction (one diverged member makes the fleet unhealthy), and the
// score summary pools the member distributions weighted by their sample
// counts (pooled mean, and pooled variance via E[x²] − E[x]²). Phase is
// the most operationally active member phase — reconstructing over
// checking over monitoring — so a dashboard polling the aggregate sees
// that *something* in the fleet is mid-adaptation. An empty member list
// aggregates to a healthy idle snapshot.
func Aggregate(members []Snapshot) Snapshot {
	agg := Snapshot{PFinite: true, Phase: "monitoring"}
	var sumMean, sumSq float64
	for _, s := range members {
		agg.SamplesSeen += s.SamplesSeen
		agg.Rejected += s.Rejected
		agg.Clamped += s.Clamped
		agg.ModelDivergences += s.ModelDivergences
		agg.WatchdogResets += s.WatchdogResets
		if s.PTraceMax > agg.PTraceMax {
			agg.PTraceMax = s.PTraceMax
		}
		agg.PFinite = agg.PFinite && s.PFinite
		n := float64(s.ScoreSamples)
		agg.ScoreSamples += s.ScoreSamples
		sumMean += n * s.ScoreMean
		sumSq += n * (s.ScoreStd*s.ScoreStd + s.ScoreMean*s.ScoreMean)
		agg.ScoreHistDropped += s.ScoreHistDropped
		agg.ScoreHistTotal += s.ScoreHistTotal
		agg.QuantSaturations += s.QuantSaturations
		agg.Merges += s.Merges
		agg.WarmRecoveries += s.WarmRecoveries
		agg.ColdFallbacks += s.ColdFallbacks
		agg.LabelsObserved += s.LabelsObserved
		agg.SupervisedFires += s.SupervisedFires
		agg.SupervisedTriggers += s.SupervisedTriggers
		agg.HybridConfirms += s.HybridConfirms
		agg.PoolHits += s.PoolHits
		agg.PoolMisses += s.PoolMisses
		agg.PoolRestores += s.PoolRestores
		agg.PoolEvictions += s.PoolEvictions
		if phaseRank(s.Phase) > phaseRank(agg.Phase) {
			agg.Phase = s.Phase
		}
	}
	if agg.ScoreSamples > 0 {
		n := float64(agg.ScoreSamples)
		agg.ScoreMean = sumMean / n
		// E[x²]−E[x]² cancels catastrophically when the pool's variance is
		// (near) zero: rounding can leave a tiny residual of either sign.
		// Treat anything below the cancellation noise floor of the E[x²]
		// term as exactly zero so zero-variance members pool to ScoreStd 0.
		meanSq := sumSq / n
		if v := meanSq - agg.ScoreMean*agg.ScoreMean; v > meanSq*1e-12 {
			agg.ScoreStd = math.Sqrt(v)
		}
	}
	return agg
}

// String renders the snapshot as a compact single-line summary, suitable
// for periodic operational logging.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "health: phase=%s samples=%d rejected=%d clamped=%d",
		s.Phase, s.SamplesSeen, s.Rejected, s.Clamped)
	fmt.Fprintf(&b, " divergences=%d watchdog-resets=%d ptrace=%.4g pfinite=%v",
		s.ModelDivergences, s.WatchdogResets, s.PTraceMax, s.PFinite)
	fmt.Fprintf(&b, " score(n=%d mean=%.4g std=%.4g dropped=%d)",
		s.ScoreSamples, s.ScoreMean, s.ScoreStd, s.ScoreHistDropped)
	// Rendered only when quantisation actually clipped, so float-backend
	// log lines keep their pinned format.
	if s.QuantSaturations > 0 {
		fmt.Fprintf(&b, " quant-sat=%d", s.QuantSaturations)
	}
	// Cooperation counters follow the same only-when-nonzero rule: a
	// fleet with cooperation off logs the exact pre-cooperation line.
	if s.Merges > 0 {
		fmt.Fprintf(&b, " merges=%d", s.Merges)
	}
	if s.WarmRecoveries > 0 {
		fmt.Fprintf(&b, " warm-recoveries=%d", s.WarmRecoveries)
	}
	if s.ColdFallbacks > 0 {
		fmt.Fprintf(&b, " cold-fallbacks=%d", s.ColdFallbacks)
	}
	// Hybrid-detection and model-pool counters render only when the
	// features are live, keeping the pinned log line for plain monitors.
	if s.LabelsObserved > 0 {
		fmt.Fprintf(&b, " labels=%d sup-fires=%d sup-triggers=%d confirms=%d",
			s.LabelsObserved, s.SupervisedFires, s.SupervisedTriggers, s.HybridConfirms)
	}
	if s.PoolHits+s.PoolMisses+s.PoolEvictions > 0 {
		fmt.Fprintf(&b, " pool(hits=%d misses=%d restores=%d evicted=%d)",
			s.PoolHits, s.PoolMisses, s.PoolRestores, s.PoolEvictions)
	}
	return b.String()
}

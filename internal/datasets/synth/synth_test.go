package synth

import (
	"math"
	"testing"

	"edgedrift/internal/rng"
)

func twoClass() *Gaussian {
	return NewGaussian([][]float64{{0, 0}, {5, 5}}, 0.5)
}

func TestGaussianSampleMoments(t *testing.T) {
	g := twoClass()
	r := rng.New(1)
	var sums [2][2]float64
	var counts [2]int
	for i := 0; i < 20000; i++ {
		x, label := g.Sample(r)
		if label < 0 || label > 1 {
			t.Fatalf("label %d", label)
		}
		counts[label]++
		sums[label][0] += x[0]
		sums[label][1] += x[1]
	}
	// Uniform class weights → roughly balanced.
	if counts[0] < 9000 || counts[0] > 11000 {
		t.Fatalf("class balance %v", counts)
	}
	for c := 0; c < 2; c++ {
		want := float64(c) * 5
		for j := 0; j < 2; j++ {
			if m := sums[c][j] / float64(counts[c]); math.Abs(m-want) > 0.05 {
				t.Fatalf("class %d dim %d mean %v, want %v", c, j, m, want)
			}
		}
	}
}

func TestGaussianWeights(t *testing.T) {
	g := twoClass()
	g.Weights = []float64{0.9, 0.1}
	r := rng.New(2)
	ones := 0
	for i := 0; i < 10000; i++ {
		if _, l := g.Sample(r); l == 1 {
			ones++
		}
	}
	if ones < 700 || ones > 1300 {
		t.Fatalf("weighted class-1 rate %v", float64(ones)/10000)
	}
}

func TestGaussianInterp(t *testing.T) {
	g := twoClass()
	o := ShiftedGaussian(g, 10)
	half := g.Interp(o, 0.5).(*Gaussian)
	if half.Means[0][0] != 5 || half.Means[1][0] != 10 {
		t.Fatalf("interp means = %v", half.Means)
	}
	if g.Interp(o, 0).(*Gaussian).Means[0][0] != 0 {
		t.Fatal("t=0 must equal the old concept")
	}
}

func TestGaussianInterpPanicsOnMismatch(t *testing.T) {
	g := twoClass()
	other := NewGaussian([][]float64{{0}}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Interp(other, 0.5)
}

func TestKindStrings(t *testing.T) {
	names := map[Kind]string{Sudden: "sudden", Gradual: "gradual", Incremental: "incremental", Reoccurring: "reoccurring"}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("%v", k)
		}
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind name")
	}
}

func TestSpecValidate(t *testing.T) {
	if err := (Spec{Kind: Sudden, Start: -1}).Validate(10); err == nil {
		t.Fatal("negative start accepted")
	}
	if err := (Spec{Kind: Gradual, Start: 5, End: 5}).Validate(10); err == nil {
		t.Fatal("empty transition accepted")
	}
	if err := (Spec{Kind: Gradual, Start: 5, End: 20}).Validate(10); err == nil {
		t.Fatal("transition beyond stream accepted")
	}
	if err := (Spec{Kind: Sudden, Start: 3}).Validate(10); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateSudden(t *testing.T) {
	pre := twoClass()
	post := ShiftedGaussian(pre, 20)
	st, err := Generate(pre, post, 100, Spec{Kind: Sudden, Start: 40}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range st.X {
		fromNew := x[0] > 10 || x[1] > 10 // shifted far away
		if i < 40 && (st.FromNew[i] || fromNew && st.Labels[i] == 0 && x[0] > 10) {
			if st.FromNew[i] {
				t.Fatalf("sample %d marked new before drift", i)
			}
		}
		if i >= 40 && !st.FromNew[i] {
			t.Fatalf("sample %d not marked new after sudden drift", i)
		}
	}
}

func TestGenerateGradualRampsMixture(t *testing.T) {
	pre := NewGaussian([][]float64{{0}}, 0.01)
	post := NewGaussian([][]float64{{100}}, 0.01)
	st, err := Generate(pre, post, 1000, Spec{Kind: Gradual, Start: 200, End: 800}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	countNew := func(lo, hi int) int {
		n := 0
		for i := lo; i < hi; i++ {
			if st.FromNew[i] {
				n++
			}
		}
		return n
	}
	if countNew(0, 200) != 0 {
		t.Fatal("new concept before drift start")
	}
	if countNew(800, 1000) != 200 {
		t.Fatal("old concept after drift end")
	}
	early := countNew(200, 400)
	late := countNew(600, 800)
	if early >= late {
		t.Fatalf("gradual mix not ramping: early=%d late=%d", early, late)
	}
	// FromNew must agree with the actual sample values.
	for i, x := range st.X {
		if st.FromNew[i] != (x[0] > 50) {
			t.Fatalf("FromNew[%d] inconsistent with sample %v", i, x[0])
		}
	}
}

func TestGenerateIncrementalMorphs(t *testing.T) {
	pre := NewGaussian([][]float64{{0}}, 0.01)
	post := NewGaussian([][]float64{{10}}, 0.01)
	st, err := Generate(pre, post, 300, Spec{Kind: Incremental, Start: 100, End: 200}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// Mid-transition samples should sit between the concepts.
	mid := st.X[150][0]
	if mid < 2 || mid > 8 {
		t.Fatalf("incremental midpoint %v, want within (2,8)", mid)
	}
	if st.X[50][0] > 1 || st.X[250][0] < 9 {
		t.Fatalf("endpoints wrong: %v, %v", st.X[50][0], st.X[250][0])
	}
}

func TestGenerateReoccurring(t *testing.T) {
	pre := NewGaussian([][]float64{{0}}, 0.01)
	post := NewGaussian([][]float64{{10}}, 0.01)
	st, err := Generate(pre, post, 300, Spec{Kind: Reoccurring, Start: 100, End: 200}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	for i := range st.X {
		wantNew := i >= 100 && i < 200
		if st.FromNew[i] != wantNew {
			t.Fatalf("FromNew[%d] = %v", i, st.FromNew[i])
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	pre := NewGaussian([][]float64{{0}}, 1)
	post := NewGaussian([][]float64{{0, 0}}, 1)
	if _, err := Generate(pre, post, 10, Spec{Kind: Sudden, Start: 5}, rng.New(7)); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
	if _, err := Generate(pre, pre, 10, Spec{Kind: Sudden, Start: 50}, rng.New(7)); err == nil {
		t.Fatal("bad spec accepted")
	}
}

func TestTrainingSet(t *testing.T) {
	xs, labels := TrainingSet(twoClass(), 50, rng.New(8))
	if len(xs) != 50 || len(labels) != 50 {
		t.Fatalf("sizes %d/%d", len(xs), len(labels))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	pre := twoClass()
	post := ShiftedGaussian(pre, 3)
	a, _ := Generate(pre, post, 200, Spec{Kind: Gradual, Start: 50, End: 150}, rng.New(9))
	b, _ := Generate(pre, post, 200, Spec{Kind: Gradual, Start: 50, End: 150}, rng.New(9))
	for i := range a.X {
		if a.X[i][0] != b.X[i][0] || a.Labels[i] != b.Labels[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestSEALabelsMatchThreshold(t *testing.T) {
	s := &SEA{Theta: 8}
	r := rng.New(20)
	for i := 0; i < 2000; i++ {
		x, label := s.Sample(r)
		if len(x) != 3 || s.Dims() != 3 {
			t.Fatal("SEA dimension")
		}
		want := 0
		if x[0]+x[1] <= 8 {
			want = 1
		}
		if label != want {
			t.Fatalf("label %d for %v", label, x)
		}
		for _, v := range x {
			if v < 0 || v >= 10 {
				t.Fatalf("attribute %v out of range", v)
			}
		}
	}
}

func TestSEANoiseFlipsLabels(t *testing.T) {
	s := &SEA{Theta: 8, Noise: 0.3}
	r := rng.New(21)
	flips := 0
	const n = 5000
	for i := 0; i < n; i++ {
		x, label := s.Sample(r)
		want := 0
		if x[0]+x[1] <= 8 {
			want = 1
		}
		if label != want {
			flips++
		}
	}
	rate := float64(flips) / n
	if rate < 0.25 || rate > 0.35 {
		t.Fatalf("noise rate %v, want ≈0.3", rate)
	}
}

func TestSEAInputDistributionIsThetaInvariant(t *testing.T) {
	// The whole point of SEA drift: P(x) does not depend on Theta.
	a := &SEA{Theta: 8}
	b := &SEA{Theta: 9.5}
	ra, rb := rng.New(22), rng.New(22)
	for i := 0; i < 100; i++ {
		xa, _ := a.Sample(ra)
		xb, _ := b.Sample(rb)
		for j := range xa {
			if xa[j] != xb[j] {
				t.Fatal("same seed must give identical inputs regardless of Theta")
			}
		}
	}
}

// Package synth generates synthetic labelled streams with controlled
// concept drift.
//
// It provides the four canonical drift shapes of the paper's Figure 1 —
// sudden, gradual, incremental and reoccurring — as composition rules
// over a pair of data sources (the "old" and "new" concepts), plus the
// Gaussian sources the other dataset surrogates build on.
package synth

import (
	"fmt"

	"edgedrift/internal/rng"
)

// Source produces labelled samples of one concept.
type Source interface {
	// Sample draws one sample and its class label.
	Sample(r *rng.Rand) (x []float64, label int)
	// Dims returns the feature dimension.
	Dims() int
}

// Interpolatable sources can morph towards another concept; used by the
// incremental drift shape.
type Interpolatable interface {
	Source
	// Interp returns a source representing the concept at fraction t
	// (0 = this source, 1 = other).
	Interp(other Source, t float64) Source
}

// Gaussian is a mixture-of-Gaussians source: one spherical component per
// class, sampled with the given class weights (uniform when nil).
type Gaussian struct {
	// Means[c] is the centre of class c.
	Means [][]float64
	// Std is the per-dimension standard deviation.
	Std float64
	// Weights are optional class probabilities (normalised internally).
	Weights []float64
}

// NewGaussian builds a source with uniform class weights.
func NewGaussian(means [][]float64, std float64) *Gaussian {
	if len(means) == 0 {
		panic("synth: Gaussian needs at least one class mean")
	}
	return &Gaussian{Means: means, Std: std}
}

// Dims implements Source.
func (g *Gaussian) Dims() int { return len(g.Means[0]) }

// Sample implements Source.
func (g *Gaussian) Sample(r *rng.Rand) ([]float64, int) {
	label := g.pickClass(r)
	mean := g.Means[label]
	x := make([]float64, len(mean))
	for i, m := range mean {
		x[i] = r.Normal(m, g.Std)
	}
	return x, label
}

func (g *Gaussian) pickClass(r *rng.Rand) int {
	if len(g.Weights) == 0 {
		return r.Intn(len(g.Means))
	}
	var total float64
	for _, w := range g.Weights {
		total += w
	}
	target := r.Float64() * total
	var acc float64
	for i, w := range g.Weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(g.Weights) - 1
}

// Interp implements Interpolatable for Gaussian-to-Gaussian morphing:
// class means move linearly, the std blends linearly.
func (g *Gaussian) Interp(other Source, t float64) Source {
	o, ok := other.(*Gaussian)
	if !ok || len(o.Means) != len(g.Means) {
		panic("synth: Gaussian.Interp needs a Gaussian with matching classes")
	}
	means := make([][]float64, len(g.Means))
	for c := range means {
		m := make([]float64, len(g.Means[c]))
		for j := range m {
			m[j] = (1-t)*g.Means[c][j] + t*o.Means[c][j]
		}
		means[c] = m
	}
	return &Gaussian{Means: means, Std: (1-t)*g.Std + t*o.Std, Weights: g.Weights}
}

// Kind is a drift shape from Figure 1.
type Kind int

const (
	// Sudden switches concepts instantaneously at Start.
	Sudden Kind = iota
	// Gradual mixes old and new with a linear probability ramp over
	// [Start, End).
	Gradual
	// Incremental morphs the distribution itself over [Start, End).
	Incremental
	// Reoccurring switches to the new concept on [Start, End) and back
	// to the old one after.
	Reoccurring
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Sudden:
		return "sudden"
	case Gradual:
		return "gradual"
	case Incremental:
		return "incremental"
	case Reoccurring:
		return "reoccurring"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one drift episode within a stream.
type Spec struct {
	Kind Kind
	// Start is the first sample index affected by the drift.
	Start int
	// End is the first index after the transition region. Sudden drifts
	// ignore it; for Reoccurring it is where the old concept returns.
	End int
}

// Validate checks the spec against a stream length.
func (s Spec) Validate(n int) error {
	if s.Start < 0 || s.Start >= n {
		return fmt.Errorf("synth: drift start %d outside stream of %d", s.Start, n)
	}
	if s.Kind != Sudden && (s.End <= s.Start || s.End > n) {
		return fmt.Errorf("synth: drift window [%d,%d) invalid for %v over %d samples", s.Start, s.End, s.Kind, n)
	}
	return nil
}

// Stream is a generated labelled stream with drift ground truth.
type Stream struct {
	// X[i] is sample i; Labels[i] its class under the generating source.
	X      [][]float64
	Labels []int
	// FromNew[i] reports whether sample i was drawn from the new
	// concept (for Incremental it is true once morphing begins).
	FromNew []bool
	// Spec is the drift episode that produced the stream.
	Spec Spec
}

// Generate composes a stream of n samples from the old concept `pre` and
// new concept `post` under the drift spec.
func Generate(pre, post Source, n int, spec Spec, r *rng.Rand) (*Stream, error) {
	if err := spec.Validate(n); err != nil {
		return nil, err
	}
	if pre.Dims() != post.Dims() {
		return nil, fmt.Errorf("synth: dimension mismatch %d vs %d", pre.Dims(), post.Dims())
	}
	st := &Stream{
		X:       make([][]float64, n),
		Labels:  make([]int, n),
		FromNew: make([]bool, n),
		Spec:    spec,
	}
	for i := 0; i < n; i++ {
		src, fromNew := spec.sourceAt(i, pre, post, r)
		x, label := src.Sample(r)
		st.X[i] = x
		st.Labels[i] = label
		st.FromNew[i] = fromNew
	}
	return st, nil
}

// sourceAt resolves which concept generates sample i.
func (s Spec) sourceAt(i int, pre, post Source, r *rng.Rand) (Source, bool) {
	switch s.Kind {
	case Sudden:
		if i >= s.Start {
			return post, true
		}
		return pre, false
	case Gradual:
		switch {
		case i < s.Start:
			return pre, false
		case i >= s.End:
			return post, true
		default:
			t := float64(i-s.Start) / float64(s.End-s.Start)
			if r.Bernoulli(t) {
				return post, true
			}
			return pre, false
		}
	case Incremental:
		switch {
		case i < s.Start:
			return pre, false
		case i >= s.End:
			return post, true
		default:
			ip, ok := pre.(Interpolatable)
			if !ok {
				panic("synth: incremental drift needs an Interpolatable old concept")
			}
			t := float64(i-s.Start) / float64(s.End-s.Start)
			return ip.Interp(post, t), true
		}
	case Reoccurring:
		if i >= s.Start && i < s.End {
			return post, true
		}
		return pre, false
	default:
		panic(fmt.Sprintf("synth: unknown drift kind %d", int(s.Kind)))
	}
}

// TrainingSet draws n labelled samples from a single (stationary)
// concept.
func TrainingSet(src Source, n int, r *rng.Rand) ([][]float64, []int) {
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := range xs {
		xs[i], labels[i] = src.Sample(r)
	}
	return xs, labels
}

// ShiftedGaussian returns a copy of g with every class mean shifted by
// delta per dimension — the simplest covariate-shift "new concept".
func ShiftedGaussian(g *Gaussian, delta float64) *Gaussian {
	means := make([][]float64, len(g.Means))
	for c, m := range g.Means {
		nm := make([]float64, len(m))
		for j, v := range m {
			nm[j] = v + delta
		}
		means[c] = nm
	}
	return &Gaussian{Means: means, Std: g.Std, Weights: g.Weights}
}

// SEA is the classic SEA-concepts stream (Street & Kim, KDD 2001): three
// uniform attributes in [0, 10); the label is 1 when x₀+x₁ ≤ Theta. A
// concept drift changes Theta — the labelling function — while the input
// distribution P(x) stays exactly uniform. This is *real* drift with no
// *virtual* drift, the case that separates error-rate detectors (which
// see it) from distribution detectors (which cannot, by construction).
type SEA struct {
	// Theta is the labelling threshold (classic values: 8, 9, 7, 9.5).
	Theta float64
	// Noise is the label-flip probability (0 for a clean stream).
	Noise float64
}

// Dims implements Source.
func (s *SEA) Dims() int { return 3 }

// Sample implements Source.
func (s *SEA) Sample(r *rng.Rand) ([]float64, int) {
	x := []float64{r.Uniform(0, 10), r.Uniform(0, 10), r.Uniform(0, 10)}
	label := 0
	if x[0]+x[1] <= s.Theta {
		label = 1
	}
	if s.Noise > 0 && r.Bernoulli(s.Noise) {
		label = 1 - label
	}
	return x, label
}

// Package coolingfan generates a synthetic surrogate for the cooling-fan
// vibration dataset the paper evaluates on (§4.1.2).
//
// The original dataset holds accelerometer frequency spectra (1–511 Hz,
// so 511 features) of normal and damaged fans in silent and noisy
// environments. The surrogate synthesises physically plausible spectra:
//
//   - a normal fan is a harmonic comb at the rotation frequency with
//     1/k^γ-decaying amplitudes plus a blade-pass peak and a noise floor;
//   - "holes in a blade" damage unbalances the rotor, boosting the 1×
//     rotation peak and adding a half-order sub-harmonic — the classic
//     imbalance signature;
//   - a "chipped blade" modulates the blade-pass frequency, adding
//     sidebands around it and boosting even harmonics;
//   - the noisy environment raises the broadband floor and injects a
//     second comb from a nearby ventilation fan.
//
// The three test streams are composed exactly as in §4.1.2: sudden drift
// at sample 120 (holes), gradual drift mixing normal and chipped over
// samples 120–600, and a reoccurring drift where the chipped signature
// appears only on samples 120–170. Each stream is 700 samples, the count
// used by the paper's Table 5 timing run.
package coolingfan

import (
	"fmt"
	"math"

	"edgedrift/internal/rng"
)

// Paper constants (§4.1.2).
const (
	// Features is the spectrum length (1–511 Hz).
	Features = 511
	// StreamLen is the test-stream length used throughout §5.
	StreamLen = 700
	// DriftAt is the 0-based index where every test stream's drift
	// begins ("the 120th data point").
	DriftAt = 120
	// GradualEnd is where the gradual mix completes.
	GradualEnd = 600
	// ReoccurEnd is where the old concept returns in the reoccurring
	// stream ("the 170th data point").
	ReoccurEnd = 170
)

// FanKind selects the fan condition.
type FanKind int

const (
	// Normal is an undamaged fan.
	Normal FanKind = iota
	// Holes is a fan with holes drilled in one blade (mass imbalance).
	Holes
	// Chipped is a fan with a chipped blade edge.
	Chipped
)

// String implements fmt.Stringer.
func (k FanKind) String() string {
	switch k {
	case Normal:
		return "normal"
	case Holes:
		return "holes"
	case Chipped:
		return "chipped"
	default:
		return fmt.Sprintf("FanKind(%d)", int(k))
	}
}

// Env selects the measurement environment.
type Env int

const (
	// Silent is the quiet laboratory environment.
	Silent Env = iota
	// Noisy is the environment near a ventilation fan.
	Noisy
)

// String implements fmt.Stringer.
func (e Env) String() string {
	if e == Noisy {
		return "noisy"
	}
	return "silent"
}

// Params controls spectrum synthesis.
type Params struct {
	// Seed drives all draws.
	Seed uint64
	// Rotation is the fan's rotation frequency in Hz (bin units).
	Rotation float64
	// Blades is the blade count (sets the blade-pass frequency).
	Blades int
	// BaseAmp is the fundamental peak amplitude.
	BaseAmp float64
	// Decay is the harmonic amplitude decay exponent γ.
	Decay float64
	// Floor is the silent-environment noise-floor standard deviation.
	Floor float64
	// Jitter is the multiplicative amplitude jitter per sample.
	Jitter float64
}

// DefaultParams returns a plausible 2,200-rpm seven-blade fan.
func DefaultParams() Params {
	return Params{
		Seed:     1,
		Rotation: 37,
		Blades:   7,
		BaseAmp:  1.0,
		Decay:    1.15,
		Floor:    0.008,
		Jitter:   0.04,
	}
}

// Generator synthesises spectra. Not safe for concurrent use.
type Generator struct {
	p Params
	r *rng.Rand
}

// NewGenerator returns a generator over its own random stream.
func NewGenerator(p Params) *Generator {
	return &Generator{p: p, r: rng.New(p.Seed)}
}

// addPeak deposits a peak of the given amplitude at frequency f,
// spreading energy over ±2 bins with a Gaussian kernel (spectral
// leakage).
func addPeak(spec []float64, f, amp float64) {
	centre := int(math.Round(f))
	for b := centre - 2; b <= centre+2; b++ {
		if b < 1 || b > len(spec) {
			continue
		}
		d := float64(b) - f
		spec[b-1] += amp * math.Exp(-d*d/0.8)
	}
}

// Spectrum draws one 511-bin magnitude spectrum for the given condition
// and environment.
func (g *Generator) Spectrum(kind FanKind, env Env) []float64 {
	p := g.p
	spec := make([]float64, Features)

	jit := func(a float64) float64 { return a * (1 + g.r.Normal(0, p.Jitter)) }

	// Rotation harmonics.
	oneX := p.BaseAmp
	if kind == Holes {
		// Mass imbalance: the 1× peak dominates.
		oneX *= 8.0
	}
	for k := 1; ; k++ {
		f := float64(k) * p.Rotation
		if f > Features {
			break
		}
		amp := p.BaseAmp / math.Pow(float64(k), p.Decay)
		if k == 1 {
			amp = oneX
		}
		if kind == Chipped && k%2 == 0 {
			// Chipped blade boosts even harmonics.
			amp *= 4.0
		}
		addPeak(spec, f, jit(amp))
	}

	// Half-order sub-harmonic from looseness that accompanies the
	// drilled-hole imbalance.
	if kind == Holes {
		addPeak(spec, p.Rotation/2, jit(1.6*p.BaseAmp))
	}

	// Blade-pass frequency and chipped-blade sidebands.
	bpf := float64(p.Blades) * p.Rotation
	if bpf <= Features {
		addPeak(spec, bpf, jit(0.8*p.BaseAmp))
		if kind == Chipped {
			addPeak(spec, bpf-p.Rotation, jit(3.0*p.BaseAmp))
			addPeak(spec, bpf+p.Rotation, jit(3.0*p.BaseAmp))
		}
	}

	// Environment.
	floor := p.Floor
	if env == Noisy {
		floor *= 4
		// Ventilation-fan comb at an unrelated fundamental.
		for k := 1; k <= 6; k++ {
			f := 23.0 * float64(k)
			if f > Features {
				break
			}
			addPeak(spec, f, jit(0.35*p.BaseAmp/float64(k)))
		}
	}
	for b := range spec {
		spec[b] += math.Abs(g.r.Normal(0, floor))
	}
	return spec
}

// TrainingSet draws n normal-fan spectra in the silent environment — the
// paper's training condition. All labels are 0 (single normal class).
func (g *Generator) TrainingSet(n int) ([][]float64, []int) {
	xs := make([][]float64, n)
	labels := make([]int, n)
	for i := range xs {
		xs[i] = g.Spectrum(Normal, Silent)
	}
	return xs, labels
}

// Stream is a composed test stream with drift ground truth.
type Stream struct {
	// X[i] is spectrum i.
	X [][]float64
	// FromNew[i] reports whether sample i came from the damaged fan.
	FromNew []bool
	// DriftAt is the 0-based index where the drift begins.
	DriftAt int
	// Name describes the stream ("sudden", "gradual", "reoccurring").
	Name string
}

// TestSudden composes test set 1: normal until index 120, holes-damaged
// after (§4.1.2 item 1).
func (g *Generator) TestSudden() *Stream {
	st := &Stream{DriftAt: DriftAt, Name: "sudden"}
	for i := 0; i < StreamLen; i++ {
		kind := Normal
		if i >= DriftAt {
			kind = Holes
		}
		st.X = append(st.X, g.Spectrum(kind, Silent))
		st.FromNew = append(st.FromNew, kind != Normal)
	}
	return st
}

// TestGradual composes test set 2: normal until 120, a linear
// normal/chipped mixture on [120, 600), chipped after (§4.1.2 item 2).
func (g *Generator) TestGradual() *Stream {
	st := &Stream{DriftAt: DriftAt, Name: "gradual"}
	for i := 0; i < StreamLen; i++ {
		kind := Normal
		switch {
		case i >= GradualEnd:
			kind = Chipped
		case i >= DriftAt:
			t := float64(i-DriftAt) / float64(GradualEnd-DriftAt)
			if g.r.Bernoulli(t) {
				kind = Chipped
			}
		}
		st.X = append(st.X, g.Spectrum(kind, Silent))
		st.FromNew = append(st.FromNew, kind != Normal)
	}
	return st
}

// TestReoccurring composes test set 3: normal until 120, chipped on
// [120, 170), normal again after (§4.1.2 item 3).
func (g *Generator) TestReoccurring() *Stream {
	st := &Stream{DriftAt: DriftAt, Name: "reoccurring"}
	for i := 0; i < StreamLen; i++ {
		kind := Normal
		if i >= DriftAt && i < ReoccurEnd {
			kind = Chipped
		}
		st.X = append(st.X, g.Spectrum(kind, Silent))
		st.FromNew = append(st.FromNew, kind != Normal)
	}
	return st
}

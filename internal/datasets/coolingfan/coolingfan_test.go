package coolingfan

import (
	"math"
	"testing"

	"edgedrift/internal/mat"
)

func TestStringers(t *testing.T) {
	if Normal.String() != "normal" || Holes.String() != "holes" || Chipped.String() != "chipped" {
		t.Fatal("fan kind names")
	}
	if FanKind(9).String() != "FanKind(9)" {
		t.Fatal("unknown kind")
	}
	if Silent.String() != "silent" || Noisy.String() != "noisy" {
		t.Fatal("env names")
	}
}

func TestSpectrumShape(t *testing.T) {
	g := NewGenerator(DefaultParams())
	s := g.Spectrum(Normal, Silent)
	if len(s) != Features {
		t.Fatalf("spectrum length %d", len(s))
	}
	for i, v := range s {
		if v < 0 || math.IsNaN(v) {
			t.Fatalf("bin %d = %v", i, v)
		}
	}
	// The fundamental (37 Hz → bin index 36) must stand clear of the
	// floor.
	if s[36] < 0.3 {
		t.Fatalf("fundamental amplitude %v", s[36])
	}
	// A quiet bin far from any harmonic stays near the floor.
	if s[16] > 0.3 {
		t.Fatalf("floor bin amplitude %v", s[16])
	}
}

func TestHolesBoostImbalancePeak(t *testing.T) {
	g := NewGenerator(DefaultParams())
	var normal1x, holes1x float64
	const n = 50
	for i := 0; i < n; i++ {
		normal1x += g.Spectrum(Normal, Silent)[36]
		holes1x += g.Spectrum(Holes, Silent)[36]
	}
	if holes1x < 1.8*normal1x {
		t.Fatalf("holes 1× peak %v not clearly above normal %v", holes1x/n, normal1x/n)
	}
}

func TestChippedAddsSidebands(t *testing.T) {
	g := NewGenerator(DefaultParams())
	// Blade pass = 7·37 = 259 Hz; sidebands at 222 and 296 Hz.
	var normalSB, chippedSB float64
	const n = 50
	for i := 0; i < n; i++ {
		sN := g.Spectrum(Normal, Silent)
		sC := g.Spectrum(Chipped, Silent)
		normalSB += sN[221] + sN[295]
		chippedSB += sC[221] + sC[295]
	}
	if chippedSB < 3*normalSB {
		t.Fatalf("chipped sidebands %v not clearly above normal %v", chippedSB/n, normalSB/n)
	}
}

func TestNoisyEnvironmentRaisesFloor(t *testing.T) {
	g := NewGenerator(DefaultParams())
	floorOf := func(env Env) float64 {
		var sum float64
		const n = 30
		for i := 0; i < n; i++ {
			s := g.Spectrum(Normal, env)
			// Average of bins far from every peak.
			sum += (s[10] + s[16] + s[122] + s[350]) / 4
		}
		return sum / n
	}
	silent, noisy := floorOf(Silent), floorOf(Noisy)
	if noisy < 2*silent {
		t.Fatalf("noisy floor %v not above silent %v", noisy, silent)
	}
}

func TestTrainingSet(t *testing.T) {
	g := NewGenerator(DefaultParams())
	xs, labels := g.TrainingSet(40)
	if len(xs) != 40 || len(labels) != 40 {
		t.Fatal("sizes")
	}
	for _, l := range labels {
		if l != 0 {
			t.Fatal("training labels must be the single normal class")
		}
	}
}

func TestTestStreamsMatchPaperComposition(t *testing.T) {
	g := NewGenerator(DefaultParams())

	sudden := g.TestSudden()
	if len(sudden.X) != StreamLen || sudden.DriftAt != 120 || sudden.Name != "sudden" {
		t.Fatal("sudden stream metadata")
	}
	for i, fn := range sudden.FromNew {
		if fn != (i >= 120) {
			t.Fatalf("sudden FromNew[%d] = %v", i, fn)
		}
	}

	grad := g.TestGradual()
	countNew := func(st *Stream, lo, hi int) int {
		n := 0
		for i := lo; i < hi; i++ {
			if st.FromNew[i] {
				n++
			}
		}
		return n
	}
	if countNew(grad, 0, 120) != 0 {
		t.Fatal("gradual: damage before drift")
	}
	if countNew(grad, 600, 700) != 100 {
		t.Fatal("gradual: old concept after 600")
	}
	if early, late := countNew(grad, 120, 300), countNew(grad, 420, 600); early >= late {
		t.Fatalf("gradual ramp wrong: %d vs %d", early, late)
	}

	reoc := g.TestReoccurring()
	for i, fn := range reoc.FromNew {
		if fn != (i >= 120 && i < 170) {
			t.Fatalf("reoccurring FromNew[%d] = %v", i, fn)
		}
	}
}

func TestDamagedSpectraAreDistinguishable(t *testing.T) {
	g := NewGenerator(DefaultParams())
	// Mean spectra of each condition must be farther apart than the
	// within-condition scatter, or no detector could work.
	meanOf := func(kind FanKind) []float64 {
		acc := make([]float64, Features)
		const n = 40
		for i := 0; i < n; i++ {
			mat.AxpyVec(acc, 1.0/n, g.Spectrum(kind, Silent))
		}
		return acc
	}
	mn, mh, mc := meanOf(Normal), meanOf(Holes), meanOf(Chipped)
	dNH := mat.L1Dist(mn, mh)
	dNC := mat.L1Dist(mn, mc)
	var scatter float64
	base := meanOf(Normal)
	for i := 0; i < 10; i++ {
		scatter += mat.L1Dist(g.Spectrum(Normal, Silent), base)
	}
	scatter /= 10
	if dNH < scatter || dNC < scatter {
		t.Fatalf("damage shift (%v, %v) buried in scatter %v", dNH, dNC, scatter)
	}
}

func TestGeneratorDeterministicBySeed(t *testing.T) {
	a := NewGenerator(DefaultParams())
	b := NewGenerator(DefaultParams())
	if mat.L1Dist(a.Spectrum(Normal, Silent), b.Spectrum(Normal, Silent)) != 0 {
		t.Fatal("same seed diverged")
	}
	p := DefaultParams()
	p.Seed = 7
	c := NewGenerator(p)
	if mat.L1Dist(a.Spectrum(Normal, Silent), c.Spectrum(Normal, Silent)) == 0 {
		t.Fatal("different seeds agree")
	}
}

// Package nslkdd generates a synthetic surrogate for the NSL-KDD
// intrusion-detection stream the paper evaluates on (§4.1.1).
//
// The real NSL-KDD dataset is an external download; per the reproduction
// ground rules it is replaced by a generator that preserves what the
// evaluated methods actually consume: a 38-feature numeric stream with
// two classes — "normal" traffic and "neptune" (SYN-flood) attacks —
// whose distribution shifts once, at the paper's exact drift point.
//
// Structure of the surrogate:
//
//   - Each class is a Gaussian with its own per-feature means and
//     standard deviations. The attack class differs strongly on a subset
//     of "flood signature" features (in the real data: serror_rate,
//     count, and friends) and weakly elsewhere, giving the ≈97% baseline
//     separability the paper's Figure 4 shows before the drift.
//   - At the drift point both class-conditional distributions shift by a
//     common covariate-shift vector and widen, and the class mix tilts
//     towards attacks — the test-set shift NSL-KDD is known for. The
//     shift magnitude is chosen so a model trained pre-drift degrades to
//     roughly the paper's 83% baseline while a retrained model recovers.
//
// Sizes match the paper exactly: 2,522 initial-training samples and
// 22,701 test samples with the drift at test index 8,333.
package nslkdd

import (
	"edgedrift/internal/rng"
)

// Paper constants (§4.1.1).
const (
	// Features is the number of continuous features.
	Features = 38
	// DefaultTrainN is the initial-training sample count.
	DefaultTrainN = 2522
	// DefaultTestN is the test-stream sample count.
	DefaultTestN = 22701
	// DefaultDriftAt is the 0-based test index of the concept drift
	// (the paper's "8333rd data point").
	DefaultDriftAt = 8332
	// LabelNormal and LabelNeptune are the class indices.
	LabelNormal  = 0
	LabelNeptune = 1
)

// Params controls generation. The zero value is not valid; start from
// DefaultParams.
type Params struct {
	// Seed drives every random draw; same seed, same dataset.
	Seed uint64
	// TrainN, TestN and DriftAt size the streams.
	TrainN, TestN, DriftAt int
	// FloodFeatures is how many features carry the attack signature.
	FloodFeatures int
	// Separation scales the class separation on signature features.
	Separation float64
	// ShiftScale scales the post-drift covariate shift.
	ShiftScale float64
	// NoiseGrowth multiplies feature stds after the drift.
	NoiseGrowth float64
	// AttackFracPre/Post are the neptune class probabilities before and
	// after the drift.
	AttackFracPre, AttackFracPost float64
	// Overlap is the probability that a sample's features are drawn from
	// the other class's distribution (ambiguous traffic), setting the
	// irreducible error floor of any classifier on the stream.
	Overlap float64
	// QuietFeatures is how many features are near-constant (the real
	// NSL-KDD has many rarely-active flags and counters). The post-drift
	// shift displaces them by QuietShift: they carry most of the
	// distribution change that detectors see while barely perturbing the
	// classification boundary.
	QuietFeatures int
	// QuietShift is the post-drift displacement of quiet features.
	QuietShift float64
	// SeparationDecay scales the attack signature after the drift: the
	// new attack variants are stealthier, sitting closer to normal
	// traffic. 1 keeps the pre-drift separation.
	SeparationDecay float64
}

// DefaultParams returns the paper-faithful configuration.
func DefaultParams() Params {
	return Params{
		Seed:            1,
		TrainN:          DefaultTrainN,
		TestN:           DefaultTestN,
		DriftAt:         DefaultDriftAt,
		FloodFeatures:   8,
		Separation:      1.4,
		ShiftScale:      0,
		NoiseGrowth:     1.1,
		AttackFracPre:   0.45,
		AttackFracPost:  0.55,
		Overlap:         0.035,
		QuietFeatures:   10,
		QuietShift:      1.6,
		SeparationDecay: 0.55,
	}
}

// Dataset is a generated surrogate stream.
type Dataset struct {
	// TrainX/TrainY are the initial-training samples and labels.
	TrainX [][]float64
	TrainY []int
	// TestX/TestY are the test stream and its ground-truth labels.
	TestX [][]float64
	TestY []int
	// DriftAt is the 0-based test index where the shift begins.
	DriftAt int
}

// classSpec holds one class's per-feature Gaussian parameters.
type classSpec struct {
	mean []float64
	std  []float64
}

func (c classSpec) sample(r *rng.Rand, shift []float64, noiseMul float64) []float64 {
	x := make([]float64, len(c.mean))
	for j := range x {
		m := c.mean[j]
		if shift != nil {
			m += shift[j]
		}
		x[j] = r.Normal(m, c.std[j]*noiseMul)
	}
	return x
}

// Generate builds the dataset for the given parameters.
func Generate(p Params) *Dataset {
	r := rng.New(p.Seed)
	specR := r.Split()  // feature-template stream
	trainR := r.Split() // training draws
	testR := r.Split()  // test draws
	driftR := r.Split() // drift-vector draws

	normal := classSpec{mean: make([]float64, Features), std: make([]float64, Features)}
	attack := classSpec{mean: make([]float64, Features), std: make([]float64, Features)}
	for j := 0; j < Features; j++ {
		normal.mean[j] = specR.Uniform(0, 2)
		normal.std[j] = specR.Uniform(0.08, 0.22)
		attack.mean[j] = normal.mean[j] + specR.Normal(0, 0.08)
		attack.std[j] = normal.std[j] * specR.Uniform(0.8, 1.2)
	}
	// Flood-signature features: strong, consistent separation. Quiet
	// features: near-constant in both classes. The remaining features
	// stay weakly informative.
	perm := specR.Perm(Features)
	sig := perm[:p.FloodFeatures]
	quiet := perm[p.FloodFeatures : p.FloodFeatures+p.QuietFeatures]
	for _, j := range sig {
		dir := 1.0
		if specR.Bernoulli(0.3) {
			dir = -1
		}
		attack.mean[j] = normal.mean[j] + dir*p.Separation*specR.Uniform(0.7, 1.3)
	}
	for _, j := range quiet {
		normal.std[j] = specR.Uniform(0.005, 0.02)
		attack.mean[j] = normal.mean[j]
		attack.std[j] = normal.std[j]
	}

	// Post-drift covariate shift: concentrated on a random half of the
	// features, same direction for both classes (environment change, not
	// a label flip).
	shift := make([]float64, Features)
	for _, j := range driftR.Perm(Features)[:Features/2] {
		shift[j] = driftR.Normal(0, p.ShiftScale)
	}
	for _, j := range quiet {
		sign := 1.0
		if driftR.Bernoulli(0.5) {
			sign = -1
		}
		shift[j] = sign * p.QuietShift * driftR.Uniform(0.7, 1.3)
	}

	// Post-drift attack profile: stealthier signature.
	attackPost := classSpec{mean: append([]float64(nil), attack.mean...), std: append([]float64(nil), attack.std...)}
	for _, j := range sig {
		// Per-feature jitter: some signature dimensions decay more than
		// others, smoothing the classification flip.
		dec := p.SeparationDecay * driftR.Uniform(0.85, 1.15)
		if dec > 1 {
			dec = 1
		}
		attackPost.mean[j] = normal.mean[j] + (attack.mean[j]-normal.mean[j])*dec
	}

	ds := &Dataset{DriftAt: p.DriftAt}
	for i := 0; i < p.TrainN; i++ {
		label := LabelNormal
		if trainR.Bernoulli(p.AttackFracPre) {
			label = LabelNeptune
		}
		spec := normal
		if (label == LabelNeptune) != trainR.Bernoulli(p.Overlap) {
			spec = attack
		}
		ds.TrainX = append(ds.TrainX, spec.sample(trainR, nil, 1))
		ds.TrainY = append(ds.TrainY, label)
	}
	for i := 0; i < p.TestN; i++ {
		drifted := i >= p.DriftAt
		frac := p.AttackFracPre
		if drifted {
			frac = p.AttackFracPost
		}
		label := LabelNormal
		if testR.Bernoulli(frac) {
			label = LabelNeptune
		}
		spec := normal
		if (label == LabelNeptune) != testR.Bernoulli(p.Overlap) {
			if drifted {
				spec = attackPost
			} else {
				spec = attack
			}
		}
		var sh []float64
		noise := 1.0
		if drifted {
			sh = shift
			noise = p.NoiseGrowth
		}
		ds.TestX = append(ds.TestX, spec.sample(testR, sh, noise))
		ds.TestY = append(ds.TestY, label)
	}
	return ds
}

package nslkdd

import (
	"math"
	"testing"

	"edgedrift/internal/mat"
)

func TestSizesMatchPaper(t *testing.T) {
	ds := Generate(DefaultParams())
	if len(ds.TrainX) != 2522 || len(ds.TrainY) != 2522 {
		t.Fatalf("train size %d", len(ds.TrainX))
	}
	if len(ds.TestX) != 22701 || len(ds.TestY) != 22701 {
		t.Fatalf("test size %d", len(ds.TestX))
	}
	if ds.DriftAt != 8332 {
		t.Fatalf("drift at %d", ds.DriftAt)
	}
	for _, x := range ds.TrainX[:10] {
		if len(x) != Features {
			t.Fatalf("feature count %d", len(x))
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Generate(DefaultParams())
	b := Generate(DefaultParams())
	for i := range a.TrainX {
		if mat.L1Dist(a.TrainX[i], b.TrainX[i]) != 0 || a.TrainY[i] != b.TrainY[i] {
			t.Fatalf("train diverges at %d", i)
		}
	}
	for _, i := range []int{0, 5000, 8332, 8333, 20000} {
		if mat.L1Dist(a.TestX[i], b.TestX[i]) != 0 {
			t.Fatalf("test diverges at %d", i)
		}
	}
	p := DefaultParams()
	p.Seed = 2
	c := Generate(p)
	if mat.L1Dist(a.TrainX[0], c.TrainX[0]) == 0 {
		t.Fatal("different seeds should differ")
	}
}

func TestBothClassesPresent(t *testing.T) {
	ds := Generate(DefaultParams())
	var counts [2]int
	for _, y := range ds.TrainY {
		counts[y]++
	}
	if counts[LabelNormal] == 0 || counts[LabelNeptune] == 0 {
		t.Fatalf("train class counts %v", counts)
	}
	frac := float64(counts[LabelNeptune]) / float64(len(ds.TrainY))
	if math.Abs(frac-0.45) > 0.05 {
		t.Fatalf("attack fraction %v, want ≈0.45", frac)
	}
}

// classMeans returns per-class per-feature means of a slice of the
// stream.
func classMeans(xs [][]float64, ys []int) [2][]float64 {
	var sums [2][]float64
	var counts [2]int
	for c := 0; c < 2; c++ {
		sums[c] = make([]float64, Features)
	}
	for i, x := range xs {
		c := ys[i]
		counts[c]++
		for j, v := range x {
			sums[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		for j := range sums[c] {
			sums[c][j] /= float64(counts[c])
		}
	}
	return sums
}

func TestClassesAreSeparated(t *testing.T) {
	ds := Generate(DefaultParams())
	means := classMeans(ds.TrainX, ds.TrainY)
	if d := mat.L2Dist(means[0], means[1]); d < 3 {
		t.Fatalf("class separation %v too small", d)
	}
}

func TestDriftShiftsDistribution(t *testing.T) {
	ds := Generate(DefaultParams())
	pre := classMeans(ds.TestX[:ds.DriftAt], ds.TestY[:ds.DriftAt])
	post := classMeans(ds.TestX[ds.DriftAt:], ds.TestY[ds.DriftAt:])
	train := classMeans(ds.TrainX, ds.TrainY)
	// Pre-drift test distribution matches training.
	if d := mat.L2Dist(pre[0], train[0]); d > 0.5 {
		t.Fatalf("pre-drift normal mean deviates from training by %v", d)
	}
	// Post-drift both classes move, in the same direction (covariate
	// shift), by a comparable amount.
	d0 := mat.L2Dist(post[0], pre[0])
	d1 := mat.L2Dist(post[1], pre[1])
	if d0 < 1 || d1 < 1 {
		t.Fatalf("post-drift shifts too small: %v, %v", d0, d1)
	}
	if math.Abs(d0-d1) > 0.5*math.Max(d0, d1) {
		t.Fatalf("class shifts inconsistent: %v vs %v", d0, d1)
	}
}

func TestAttackMixTiltsAfterDrift(t *testing.T) {
	ds := Generate(DefaultParams())
	frac := func(ys []int) float64 {
		n := 0
		for _, y := range ys {
			if y == LabelNeptune {
				n++
			}
		}
		return float64(n) / float64(len(ys))
	}
	pre, post := frac(ds.TestY[:ds.DriftAt]), frac(ds.TestY[ds.DriftAt:])
	if post <= pre {
		t.Fatalf("attack mix did not tilt: %v → %v", pre, post)
	}
}

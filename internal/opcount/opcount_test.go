package opcount

import "testing"

func TestNilCounterSafe(t *testing.T) {
	var c *Counter
	c.AddMulAdd(5)
	c.AddAdd(1)
	c.AddMul(1)
	c.AddDiv(1)
	c.AddExp(1)
	c.AddAbs(1)
	c.AddCmp(1) // must not panic
}

func TestAccumulationAndTotal(t *testing.T) {
	var c Counter
	c.AddMulAdd(10)
	c.AddAdd(2)
	c.AddMul(3)
	c.AddDiv(4)
	c.AddExp(5)
	c.AddAbs(6)
	c.AddCmp(7)
	if c.Total() != 37 {
		t.Fatalf("Total = %d, want 37", c.Total())
	}
}

func TestSubAndAddCounter(t *testing.T) {
	var a Counter
	a.AddMulAdd(10)
	a.AddDiv(3)
	snap := a
	a.AddMulAdd(5)
	a.AddExp(2)
	d := a.Sub(snap)
	if d.MulAdd != 5 || d.Exp != 2 || d.Div != 0 {
		t.Fatalf("Sub = %+v", d)
	}
	var acc Counter
	acc.AddCounter(d)
	acc.AddCounter(d)
	if acc.MulAdd != 10 || acc.Exp != 4 {
		t.Fatalf("AddCounter = %+v", acc)
	}
}

func TestReset(t *testing.T) {
	var c Counter
	c.AddMulAdd(1)
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("Reset failed")
	}
}

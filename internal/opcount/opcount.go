// Package opcount provides a lightweight floating-point operation counter.
//
// The paper evaluates execution time on two very different processors
// (Cortex-A72 with a hardware FPU, Cortex-M0+ with software floats under
// an interpreted runtime). Rather than guessing stage costs, the compute
// kernels in this reproduction increment a Counter when one is attached;
// internal/device then converts counted operations into device time with
// per-platform cycle costs. Counting is optional — a nil *Counter adds a
// single branch to hot loops' call sites and nothing else.
package opcount

// Counter tallies classes of floating-point work. The zero value is ready
// to use.
type Counter struct {
	// MulAdd counts fused multiply-accumulate-equivalent operations
	// (one multiply plus one add), the dominant cost of matrix kernels.
	MulAdd uint64
	// Add counts standalone additions/subtractions.
	Add uint64
	// Mul counts standalone multiplications.
	Mul uint64
	// Div counts divisions.
	Div uint64
	// Exp counts transcendental evaluations (exp in the sigmoid).
	Exp uint64
	// Abs counts absolute-value operations (L1 distances).
	Abs uint64
	// Cmp counts floating-point comparisons (argmin scans, thresholds).
	Cmp uint64
}

// AddMulAdd records n multiply-accumulate operations.
func (c *Counter) AddMulAdd(n int) {
	if c != nil {
		c.MulAdd += uint64(n)
	}
}

// AddAdd records n additions.
func (c *Counter) AddAdd(n int) {
	if c != nil {
		c.Add += uint64(n)
	}
}

// AddMul records n multiplications.
func (c *Counter) AddMul(n int) {
	if c != nil {
		c.Mul += uint64(n)
	}
}

// AddDiv records n divisions.
func (c *Counter) AddDiv(n int) {
	if c != nil {
		c.Div += uint64(n)
	}
}

// AddExp records n transcendental evaluations.
func (c *Counter) AddExp(n int) {
	if c != nil {
		c.Exp += uint64(n)
	}
}

// AddAbs records n absolute-value operations.
func (c *Counter) AddAbs(n int) {
	if c != nil {
		c.Abs += uint64(n)
	}
}

// AddCmp records n comparisons.
func (c *Counter) AddCmp(n int) {
	if c != nil {
		c.Cmp += uint64(n)
	}
}

// Reset zeroes the counter.
func (c *Counter) Reset() { *c = Counter{} }

// Sub returns the element-wise difference c − o, for measuring a region
// between two snapshots.
func (c Counter) Sub(o Counter) Counter {
	return Counter{
		MulAdd: c.MulAdd - o.MulAdd,
		Add:    c.Add - o.Add,
		Mul:    c.Mul - o.Mul,
		Div:    c.Div - o.Div,
		Exp:    c.Exp - o.Exp,
		Abs:    c.Abs - o.Abs,
		Cmp:    c.Cmp - o.Cmp,
	}
}

// AddCounter accumulates o into c.
func (c *Counter) AddCounter(o Counter) {
	c.MulAdd += o.MulAdd
	c.Add += o.Add
	c.Mul += o.Mul
	c.Div += o.Div
	c.Exp += o.Exp
	c.Abs += o.Abs
	c.Cmp += o.Cmp
}

// Total returns the total number of counted operations, weighting every
// class equally. Device models apply per-class weights instead; Total is
// a convenience for tests and quick comparisons.
func (c Counter) Total() uint64 {
	return c.MulAdd + c.Add + c.Mul + c.Div + c.Exp + c.Abs + c.Cmp
}

package model

import (
	"bytes"
	"testing"

	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

func TestMultiSaveLoadRoundTrip(t *testing.T) {
	m, xs, labels := newTrained(t, 50)
	var buf bytes.Buffer
	n, err := m.Save(&buf, oselm.Float64)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Classes() != m.Classes() {
		t.Fatalf("classes %d vs %d", got.Classes(), m.Classes())
	}
	c := got.Config()
	if c.Inputs != 4 || c.Hidden != 6 {
		t.Fatalf("config %+v", c)
	}
	// Identical predictions and scores across the training data.
	for i, x := range xs {
		la, sa := m.Predict(x)
		lb, sb := got.Predict(x)
		if la != lb || sa != sb {
			t.Fatalf("sample %d (label %d): (%d,%v) vs (%d,%v)", i, labels[i], la, sa, lb, sb)
		}
	}
	// Continued sequential training stays in lockstep.
	m.Train(xs[0], labels[0])
	got.Train(xs[0], labels[0])
	_, sa := m.Predict(xs[1])
	_, sb := got.Predict(xs[1])
	if sa != sb {
		t.Fatalf("post-load training diverged: %v vs %v", sa, sb)
	}
}

func TestMultiSaveLoadFloat32(t *testing.T) {
	m, xs, _ := newTrained(t, 51)
	var buf bytes.Buffer
	if _, err := m.Save(&buf, oselm.Float32); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	agree := 0
	for _, x := range xs {
		la, _ := m.Predict(x)
		lb, _ := got.Predict(x)
		if la == lb {
			agree++
		}
	}
	if float64(agree)/float64(len(xs)) < 0.999 {
		t.Fatalf("float32 deployment changed %d/%d labels", len(xs)-agree, len(xs))
	}
}

func TestMultiLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("garbage stream xxxxxx"))); err == nil {
		t.Fatal("expected format error")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error on empty stream")
	}
}

func TestMultiLoadRejectsTruncated(t *testing.T) {
	m, _, _ := newTrained(t, 52)
	var buf bytes.Buffer
	if _, err := m.Save(&buf, oselm.Float64); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Load(bytes.NewReader(data[:len(data)-100])); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestMultiLoadRejectsAbsurdClassCount(t *testing.T) {
	buf := append([]byte("MULTI1"), 0xff, 0xff, 0xff, 0x7f)
	if _, err := Load(bytes.NewReader(buf)); err == nil {
		t.Fatal("expected class-count rejection")
	}
	_ = rng.New(0) // keep import symmetry with sibling tests
}

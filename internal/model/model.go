// Package model implements the paper's discriminative model (§3.1): one
// OS-ELM autoencoder instance per class label. A sample's predicted label
// is the instance that reconstructs it best (argmin anomaly score), and
// sequential training updates exactly one instance — the predicted
// ("closest") one, or an externally chosen one during reconstruction.
package model

import (
	"fmt"
	"math"

	"edgedrift/internal/opcount"
	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

// Discriminator is the interface the drift detectors program against: a
// label predictor with a per-sample anomaly score and a sequential
// training path.
type Discriminator interface {
	// Predict returns the predicted class of x and the anomaly score of
	// the winning instance (the smaller the more normal).
	Predict(x []float64) (label int, score float64)
	// Train folds x into the instance for the given label.
	Train(x []float64, label int)
	// Classes returns the number of class labels C.
	Classes() int
}

// Config describes a multi-instance model.
type Config struct {
	// Classes is the number of labels C (one autoencoder each).
	Classes int
	// Inputs is the feature dimension D.
	Inputs int
	// Hidden is the autoencoder hidden width.
	Hidden int
	// Metric scores reconstructions; default MSE.
	Metric oselm.ScoreMetric
	// Forgetting is the per-instance forgetting factor (0 → 1.0, plain
	// OS-ELM; <1 gives the ONLAD behaviour).
	Forgetting float64
	// Ridge regularises each instance (0 → 1e-3).
	Ridge float64
	// WeightScale bounds the random projections (0 → 1).
	WeightScale float64
	// Precision selects the numeric backend every instance computes its
	// inference-side state at (default Float64; see oselm.Config).
	Precision oselm.Precision
}

// Multi is the concrete multi-instance autoencoder model.
//
// Multi is not safe for concurrent use by multiple goroutines; the
// parallelism knobs (SetParallelism) only parallelise the internals of a
// single Predict call.
type Multi struct {
	cfg       Config
	instances []*oselm.Autoencoder
	scores    []float64
	ops       *opcount.Counter

	// Parallel-scoring state; see parallel.go.
	parWorkers   int // 1 = sequential (default)
	parThreshold int // min modelled MACs per Predict before fanning out
	predictMACs  int // ≈ C·2·D·H, fixed at construction
	pool         *scorePool

	// batchScores holds one score column per class for PredictBatch,
	// allocated lazily so per-sample-only deployments carry no extra
	// state (C × predictBatchChunk).
	batchScores [][]float64
}

var _ Discriminator = (*Multi)(nil)

// New builds the model, drawing each instance's random projection from an
// independent sub-stream of r so instance count changes do not perturb
// other consumers.
func New(cfg Config, r *rng.Rand) (*Multi, error) {
	if cfg.Classes <= 0 {
		return nil, fmt.Errorf("model: need at least one class, got %d", cfg.Classes)
	}
	m := &Multi{
		cfg:          cfg,
		instances:    make([]*oselm.Autoencoder, cfg.Classes),
		scores:       make([]float64, cfg.Classes),
		parWorkers:   1,
		parThreshold: defaultParallelThreshold,
		predictMACs:  cfg.Classes * 2 * cfg.Inputs * cfg.Hidden,
	}
	for i := range m.instances {
		ae, err := oselm.NewAutoencoder(oselm.Config{
			Inputs:      cfg.Inputs,
			Hidden:      cfg.Hidden,
			Forgetting:  cfg.Forgetting,
			Ridge:       cfg.Ridge,
			WeightScale: cfg.WeightScale,
			Precision:   cfg.Precision,
		}, cfg.Metric, r.Split())
		if err != nil {
			return nil, fmt.Errorf("model: instance %d: %w", i, err)
		}
		m.instances[i] = ae
	}
	return m, nil
}

// Classes returns C.
func (m *Multi) Classes() int { return m.cfg.Classes }

// Config returns the construction config.
func (m *Multi) Config() Config { return m.cfg }

// Predict scores x under every instance and returns the argmin label with
// its score (Algorithm 1 lines 6–7). When parallel scoring is enabled
// and the model is large enough (see SetParallelism), the C scorings run
// concurrently; the result is identical to the sequential path because
// every instance writes its pre-assigned slot of the score buffer and
// the argmin scan below is always sequential.
func (m *Multi) Predict(x []float64) (int, float64) {
	if m.parallelOK() {
		m.pool.score(x)
	} else {
		for i, ae := range m.instances {
			m.scores[i] = ae.Score(x)
		}
	}
	best, bestScore := 0, m.scores[0]
	for i, s := range m.scores {
		if s < bestScore {
			best, bestScore = i, s
		}
	}
	m.ops.AddCmp(len(m.instances) - 1)
	return best, bestScore
}

// Scores returns the per-instance anomaly scores computed by the most
// recent Predict (a view; valid until the next Predict).
func (m *Multi) Scores() []float64 { return m.scores }

// predictBatchChunk bounds how many samples PredictBatch stages per
// instance sweep; matches the oselm batched-forward chunk so each
// instance's ScoreBatch call is exactly one GEMM pair.
const predictBatchChunk = 64

// ensureBatchScores lazily allocates the per-class score columns.
func (m *Multi) ensureBatchScores() [][]float64 {
	if m.batchScores == nil {
		m.batchScores = make([][]float64, m.cfg.Classes)
		for i := range m.batchScores {
			m.batchScores[i] = make([]float64, predictBatchChunk)
		}
	}
	return m.batchScores
}

// PredictBatch predicts every sample of xs, writing the argmin label and
// its score into labels[i] and scores[i] (both len(xs)). Each instance
// scores whole chunks through its batched forward, so the per-sample
// arithmetic — and therefore every label and score — is bit-identical to
// calling Predict per sample; only the order instances touch memory
// changes. The argmin scan replicates Predict's exactly (strict <, first
// index wins) including its comparison charge. Unlike Predict, the
// Scores() view is not updated. The batch path never fans out to the
// parallel scorer; it is already bandwidth-optimal sequentially.
func (m *Multi) PredictBatch(labels []int, scores []float64, xs [][]float64) {
	if len(labels) != len(xs) || len(scores) != len(xs) {
		panic("model: PredictBatch buffer length mismatch")
	}
	bs := m.ensureBatchScores()
	for start := 0; start < len(xs); start += predictBatchChunk {
		end := start + predictBatchChunk
		if end > len(xs) {
			end = len(xs)
		}
		chunk := xs[start:end]
		for c, ae := range m.instances {
			ae.ScoreBatch(bs[c][:len(chunk)], chunk)
		}
		for i := range chunk {
			best, bestScore := 0, bs[0][i]
			for c := range m.instances {
				if s := bs[c][i]; s < bestScore {
					best, bestScore = c, s
				}
			}
			m.ops.AddCmp(len(m.instances) - 1)
			labels[start+i], scores[start+i] = best, bestScore
		}
	}
}

// Train folds x into the instance for label.
func (m *Multi) Train(x []float64, label int) {
	m.instances[label].Train(x)
}

// TrainClosest predicts x and trains the winning instance, the paper's
// default sequential-learning behaviour; it returns the predicted label
// and score.
func (m *Multi) TrainClosest(x []float64) (int, float64) {
	label, score := m.Predict(x)
	m.Train(x, label)
	return label, score
}

// InitSequential trains instance labels[i] on xs[i] in order, the fully
// sequential initial-training path that also runs on the microcontroller.
func (m *Multi) InitSequential(xs [][]float64, labels []int) error {
	if len(xs) != len(labels) {
		return fmt.Errorf("model: %d samples vs %d labels", len(xs), len(labels))
	}
	for i, x := range xs {
		l := labels[i]
		if l < 0 || l >= m.cfg.Classes {
			return fmt.Errorf("model: label %d out of range [0,%d)", l, m.cfg.Classes)
		}
		m.instances[l].Train(x)
	}
	return nil
}

// InitBatch batch-initialises each instance on its class's samples, the
// host-side (Raspberry Pi 4) initial training path.
func (m *Multi) InitBatch(xs [][]float64, labels []int) error {
	if len(xs) != len(labels) {
		return fmt.Errorf("model: %d samples vs %d labels", len(xs), len(labels))
	}
	byClass := make([][][]float64, m.cfg.Classes)
	for i, x := range xs {
		l := labels[i]
		if l < 0 || l >= m.cfg.Classes {
			return fmt.Errorf("model: label %d out of range [0,%d)", l, m.cfg.Classes)
		}
		byClass[l] = append(byClass[l], x)
	}
	for c, group := range byClass {
		if len(group) == 0 {
			continue // an instance may start untrained
		}
		if err := m.instances[c].InitTrainBatch(group); err != nil {
			return fmt.Errorf("model: class %d: %w", c, err)
		}
	}
	return nil
}

// Reset clears every instance's learned state (random projections are
// kept), used by drift-triggered model reconstruction.
func (m *Multi) Reset() {
	for _, ae := range m.instances {
		ae.Reset()
	}
}

// Instance exposes a single autoencoder, mainly for tests and
// serialisation.
func (m *Multi) Instance(i int) *oselm.Autoencoder { return m.instances[i] }

// SetOps attaches an operation counter to the model and all instances.
func (m *Multi) SetOps(c *opcount.Counter) {
	m.ops = c
	for _, ae := range m.instances {
		ae.SetOps(c)
	}
}

// Health aggregates the per-instance RLS watchdog views: the worst
// (largest, NaN-propagating) P trace, finiteness across every instance,
// and the summed watchdog reset count.
func (m *Multi) Health() oselm.Health {
	agg := oselm.Health{PFinite: true, BetaFinite: true}
	for _, ae := range m.instances {
		h := ae.Model().HealthNow()
		agg.PTrace = math.Max(agg.PTrace, h.PTrace)
		agg.PFinite = agg.PFinite && h.PFinite
		agg.BetaFinite = agg.BetaFinite && h.BetaFinite
		agg.WatchdogResets += h.WatchdogResets
	}
	return agg
}

// Precision returns the numeric backend the instances compute at.
func (m *Multi) Precision() oselm.Precision { return m.cfg.Precision }

// MemoryBytes reports the retained bytes across all instances plus the
// score buffer. The score buffer holds one scalar per class at the
// backend's element width (the float64 slice here is its widened image
// on reduced-precision backends).
func (m *Multi) MemoryBytes() int {
	total := m.cfg.Precision.Bytes() * len(m.scores)
	for _, col := range m.batchScores {
		total += m.cfg.Precision.Bytes() * len(col)
	}
	for _, ae := range m.instances {
		total += ae.MemoryBytes()
	}
	return total
}

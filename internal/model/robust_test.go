package model

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"edgedrift/internal/oselm"
)

func savedMulti(t *testing.T) ([]byte, *Multi) {
	t.Helper()
	m, _, _ := newTrained(t, 60)
	var buf bytes.Buffer
	if _, err := m.Save(&buf, oselm.Float64); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), m
}

func TestMultiLoadRejectsEveryTruncation(t *testing.T) {
	full, _ := savedMulti(t)
	for n := 0; n < len(full); n++ {
		if _, err := Load(bytes.NewReader(full[:n])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("truncation at %d/%d: err = %v, want ErrBadFormat", n, len(full), err)
		}
	}
}

func TestMultiLoadRejectsEveryFlippedByte(t *testing.T) {
	full, _ := savedMulti(t)
	for i := range full {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x10
		if _, err := Load(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("flipped byte %d/%d: err = %v, want ErrBadFormat", i, len(full), err)
		}
	}
}

// TestMultiLoadV1Legacy: a v1 multi artifact is the same header and
// instance payloads without the whole-stream footer. The embedded
// instances carry their own version magics, so leaving them in the
// current format inside a v1 wrapper is a legal legacy stream.
func TestMultiLoadV1Legacy(t *testing.T) {
	full, m := savedMulti(t)
	v1 := append([]byte(nil), full[:len(full)-4]...)
	if v1[5] != '2' {
		t.Fatalf("unexpected version byte %q", v1[5])
	}
	v1[5] = '1'
	got, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 artifact failed to load: %v", err)
	}
	if got.Classes() != m.Classes() {
		t.Fatalf("classes %d vs %d", got.Classes(), m.Classes())
	}
}

func TestMultiHealthAggregates(t *testing.T) {
	m, xs, labels := newTrained(t, 61)
	h := m.Health()
	if !h.PFinite || !h.BetaFinite {
		t.Fatalf("trained model unhealthy: %+v", h)
	}
	if h.PTrace <= 0 || math.IsNaN(h.PTrace) {
		t.Fatalf("implausible aggregated P trace %v", h.PTrace)
	}
	if h.WatchdogResets != 0 {
		t.Fatalf("fresh model reports %d watchdog resets", h.WatchdogResets)
	}
	// A non-finite training sample hits one instance's RLS denominator
	// guard; the repair must surface in the aggregated reset count while
	// the state stays finite.
	bad := append([]float64(nil), xs[0]...)
	bad[0] = math.NaN()
	m.Train(bad, labels[0])
	h = m.Health()
	if h.WatchdogResets == 0 {
		t.Fatal("aggregate missed the instance's divergence repair")
	}
	if !h.PFinite || !h.BetaFinite {
		t.Fatalf("repair left non-finite state: %+v", h)
	}
}

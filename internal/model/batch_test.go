package model

import (
	"math"
	"testing"

	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

func batchMulti(t testing.TB, p oselm.Precision, classes int) *Multi {
	t.Helper()
	m, err := New(Config{Classes: classes, Inputs: 24, Hidden: 7, Precision: p}, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(9)
	x := make([]float64, 24)
	for i := 0; i < 60; i++ {
		r.FillUniform(x, -1, 1)
		m.Train(x, i%classes)
	}
	return m
}

func multiSamples(n int) [][]float64 {
	r := rng.New(17)
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, 24)
		r.FillUniform(xs[i], -1, 1)
	}
	return xs
}

func TestPredictBatchMatchesPredict(t *testing.T) {
	for _, p := range []oselm.Precision{oselm.Float64, oselm.Float32} {
		for _, n := range []int{1, 5, 64, 65, 130} {
			m := batchMulti(t, p, 3)
			xs := multiSamples(n)
			wantL := make([]int, n)
			wantS := make([]float64, n)
			for i, x := range xs {
				wantL[i], wantS[i] = m.Predict(x)
			}
			gotL := make([]int, n)
			gotS := make([]float64, n)
			m.PredictBatch(gotL, gotS, xs)
			for i := range xs {
				if gotL[i] != wantL[i] || math.Float64bits(gotS[i]) != math.Float64bits(wantS[i]) {
					t.Fatalf("%v n=%d sample %d: batch (%d, %v) per-sample (%d, %v)",
						p, n, i, gotL[i], gotS[i], wantL[i], wantS[i])
				}
			}
		}
	}
}

func TestPredictBatchZeroAllocs(t *testing.T) {
	for _, p := range []oselm.Precision{oselm.Float64, oselm.Float32} {
		m := batchMulti(t, p, 2)
		xs := multiSamples(96)
		labels := make([]int, len(xs))
		scores := make([]float64, len(xs))
		m.PredictBatch(labels, scores, xs) // allocate batch state once
		if n := testing.AllocsPerRun(50, func() { m.PredictBatch(labels, scores, xs) }); n != 0 {
			t.Fatalf("%v: PredictBatch allocates %v objects per call, want 0", p, n)
		}
	}
}

func TestPredictBatchBufferMismatchPanics(t *testing.T) {
	m := batchMulti(t, oselm.Float64, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mismatched buffers")
		}
	}()
	m.PredictBatch(make([]int, 1), make([]float64, 2), multiSamples(2))
}

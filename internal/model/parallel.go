package model

import (
	"runtime"
	"sync"
)

// Parallel multi-instance scoring.
//
// Predict's dominant cost is C independent autoencoder scorings — each
// instance owns its weights and scratch buffers and is strictly read-only
// with respect to the others, so the fan-out is embarrassingly parallel.
// A persistent pool of worker goroutines scores disjoint slices of the
// instance range into pre-assigned slots of the shared scores buffer;
// the argmin scan afterwards is sequential, so the predicted label is
// bit-identical to the sequential path regardless of scheduling.
//
// The pool engages only when all of the following hold:
//
//   - parallelism was requested (SetParallelism > 1, or automatic via
//     GOMAXPROCS when SetParallelism(0) is called);
//   - no operation counter is attached (instances share one *opcount.Counter;
//     concurrent scoring would race on it, and instrumented paper runs
//     must stay exactly sequential anyway);
//   - the per-sample work C·(2·D·H) clears ParallelThreshold, below which
//     handoff latency exceeds the scoring work itself.
//
// Otherwise Predict falls back to the sequential loop. Goroutine safety:
// during a parallel Predict the instances are only read (Score writes
// exclusively to the instance's own scratch buffers), and each worker
// writes a disjoint range of m.scores, so no synchronisation beyond the
// start/finish handshake is needed.

// defaultParallelThreshold is the minimum multiply-accumulate count per
// Predict (≈ C·2·D·H) before the pool engages. Channel handoff plus
// wakeup costs a few microseconds per worker; at ~50k MACs the
// sequential loop is comfortably cheaper.
const defaultParallelThreshold = 200_000

// scorePool is the persistent worker pool backing parallel Predict.
type scorePool struct {
	workers int
	jobs    chan scoreSpan
	wg      sync.WaitGroup // in-flight spans of the current Predict
	x       []float64      // input of the current Predict (set before dispatch)
	m       *Multi
	stop    chan struct{}
}

// scoreSpan is a half-open instance range [lo, hi) one worker scores.
type scoreSpan struct{ lo, hi int }

func newScorePool(m *Multi, workers int) *scorePool {
	p := &scorePool{
		workers: workers,
		jobs:    make(chan scoreSpan, workers),
		m:       m,
		stop:    make(chan struct{}),
	}
	for w := 0; w < workers; w++ {
		go p.run()
	}
	return p
}

func (p *scorePool) run() {
	for {
		select {
		case span := <-p.jobs:
			for i := span.lo; i < span.hi; i++ {
				p.m.scores[i] = p.m.instances[i].Score(p.x)
			}
			p.wg.Done()
		case <-p.stop:
			return
		}
	}
}

// score fans the C instances out over the workers and blocks until every
// slot of m.scores is filled.
func (p *scorePool) score(x []float64) {
	p.x = x
	c := len(p.m.instances)
	span := (c + p.workers - 1) / p.workers
	for lo := 0; lo < c; lo += span {
		hi := lo + span
		if hi > c {
			hi = c
		}
		p.wg.Add(1)
		p.jobs <- scoreSpan{lo, hi}
	}
	p.wg.Wait()
	p.x = nil
}

func (p *scorePool) close() {
	close(p.stop)
}

// SetParallelism configures concurrent scoring: n > 1 uses n workers,
// n == 0 uses GOMAXPROCS, and n == 1 (the construction default) keeps
// scoring strictly sequential. The pool is created lazily on the first
// Predict that qualifies (see SetParallelThreshold); callers that enable
// parallelism should Close the model when done with it.
func (m *Multi) SetParallelism(n int) {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n == m.parWorkers {
		return
	}
	if m.pool != nil {
		m.pool.close()
		m.pool = nil
	}
	m.parWorkers = n
}

// SetParallelThreshold overrides the minimum modelled multiply-accumulate
// count per Predict (≈ C·2·D·H) before parallel scoring engages; 0
// restores the default. Tests use 1 to force the concurrent path on
// small models.
func (m *Multi) SetParallelThreshold(ops int) {
	if ops <= 0 {
		ops = defaultParallelThreshold
	}
	m.parThreshold = ops
}

// Close releases the scoring pool's goroutines, if any. The model
// remains usable afterwards on the sequential path. Close is a no-op on
// a model that never engaged parallel scoring.
func (m *Multi) Close() {
	if m.pool != nil {
		m.pool.close()
		m.pool = nil
	}
	m.parWorkers = 1
}

// parallelOK reports whether the next Predict should take the concurrent
// path, creating the pool on first use.
func (m *Multi) parallelOK() bool {
	if m.parWorkers <= 1 || m.ops != nil || len(m.instances) < 2 {
		return false
	}
	if m.predictMACs < m.parThreshold {
		return false
	}
	if m.pool == nil {
		w := m.parWorkers
		if w > len(m.instances) {
			w = len(m.instances)
		}
		m.pool = newScorePool(m, w)
	}
	return true
}

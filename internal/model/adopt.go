package model

import (
	"errors"
	"fmt"
)

// AdoptState copies src's per-instance model state into m in place —
// every autoencoder's weights, RLS state and watchdog phase — without
// rebinding any pointer, so detectors and monitors holding m keep
// working and m continues a stream bit-identically to src. Both models
// must share one configuration. Used by the reoccurring-drift model
// pool to restore a checkpointed model into the live instance.
func (m *Multi) AdoptState(src *Multi) error {
	if src == nil {
		return errors.New("model: AdoptState from nil model")
	}
	// Shape check here; the authoritative config comparison happens per
	// instance, where both sides hold the normalised (defaults applied)
	// configuration — a constructed Multi keeps the caller's raw zeros
	// while a loaded one carries materialised defaults, so comparing at
	// this level would reject state that is in fact identical.
	if len(m.instances) != len(src.instances) {
		return fmt.Errorf("model: AdoptState class mismatch: have %d, adopting %d", len(m.instances), len(src.instances))
	}
	for i, inst := range m.instances {
		if err := inst.AdoptState(src.instances[i]); err != nil {
			return fmt.Errorf("model: instance %d: %w", i, err)
		}
	}
	return nil
}

package model

import (
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

// twoClassData draws samples from two well-separated Gaussian blobs in
// dim dimensions.
func twoClassData(r *rng.Rand, n, dim int) (xs [][]float64, labels []int) {
	centres := [][]float64{make([]float64, dim), make([]float64, dim)}
	for j := range centres[1] {
		centres[1][j] = 5
	}
	for i := 0; i < n; i++ {
		c := i % 2
		x := make([]float64, dim)
		for j := range x {
			x[j] = r.Normal(centres[c][j], 0.3)
		}
		xs = append(xs, x)
		labels = append(labels, c)
	}
	return xs, labels
}

func newTrained(t *testing.T, seed uint64) (*Multi, [][]float64, []int) {
	t.Helper()
	m, err := New(Config{Classes: 2, Inputs: 4, Hidden: 6, Ridge: 1e-2}, rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	xs, labels := twoClassData(rng.New(seed+1), 1000, 4)
	if err := m.InitSequential(xs, labels); err != nil {
		t.Fatal(err)
	}
	return m, xs, labels
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Classes: 0, Inputs: 2, Hidden: 2}, rng.New(1)); err == nil {
		t.Fatal("expected error for zero classes")
	}
	if _, err := New(Config{Classes: 2, Inputs: 0, Hidden: 2}, rng.New(1)); err == nil {
		t.Fatal("expected propagated instance config error")
	}
}

func TestPredictSeparatesClasses(t *testing.T) {
	m, _, _ := newTrained(t, 10)
	r := rng.New(99)
	correct := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		c := i % 2
		x := make([]float64, 4)
		for j := range x {
			x[j] = r.Normal(float64(c)*5, 0.3)
		}
		got, score := m.Predict(x)
		if got == c {
			correct++
		}
		if score < 0 {
			t.Fatalf("negative anomaly score %v", score)
		}
	}
	if acc := float64(correct) / trials; acc < 0.97 {
		t.Fatalf("accuracy %v on separable blobs, want ≥ 0.97", acc)
	}
}

func TestScoresViewMatchesPredict(t *testing.T) {
	m, xs, _ := newTrained(t, 11)
	label, score := m.Predict(xs[0])
	scores := m.Scores()
	if len(scores) != 2 {
		t.Fatalf("scores len = %d", len(scores))
	}
	if scores[label] != score {
		t.Fatalf("winning score %v not at index %d in %v", score, label, scores)
	}
	other := 1 - label
	if scores[other] < score {
		t.Fatal("argmin violated")
	}
}

func TestTrainClosestUpdatesWinningInstance(t *testing.T) {
	m, err := New(Config{Classes: 2, Inputs: 3, Hidden: 4}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	before0 := m.Instance(0).SamplesSeen()
	before1 := m.Instance(1).SamplesSeen()
	label, _ := m.TrainClosest([]float64{1, 2, 3})
	if got := m.Instance(label).SamplesSeen(); got != beforeFor(label, before0, before1)+1 {
		t.Fatalf("winning instance not trained: %d", got)
	}
	if got := m.Instance(1 - label).SamplesSeen(); got != beforeFor(1-label, before0, before1) {
		t.Fatal("losing instance must not be trained")
	}
}

func beforeFor(label, b0, b1 int) int {
	if label == 0 {
		return b0
	}
	return b1
}

func TestInitSequentialErrors(t *testing.T) {
	m, _ := New(Config{Classes: 2, Inputs: 2, Hidden: 2}, rng.New(13))
	if err := m.InitSequential([][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := m.InitSequential([][]float64{{1, 2}}, []int{7}); err == nil {
		t.Fatal("expected out-of-range label error")
	}
}

func TestInitBatchMatchesSequentialSeparation(t *testing.T) {
	m, err := New(Config{Classes: 2, Inputs: 4, Hidden: 6, Ridge: 1e-2}, rng.New(14))
	if err != nil {
		t.Fatal(err)
	}
	xs, labels := twoClassData(rng.New(15), 600, 4)
	if err := m.InitBatch(xs, labels); err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range xs {
		if got, _ := m.Predict(x); got == labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(xs)); acc < 0.97 {
		t.Fatalf("batch-init accuracy %v", acc)
	}
}

func TestInitBatchErrors(t *testing.T) {
	m, _ := New(Config{Classes: 2, Inputs: 2, Hidden: 2}, rng.New(16))
	if err := m.InitBatch([][]float64{{1, 2}}, []int{-1}); err == nil {
		t.Fatal("expected label range error")
	}
	if err := m.InitBatch([][]float64{{1, 2}}, nil); err == nil {
		t.Fatal("expected mismatch error")
	}
	// One empty class is fine.
	if err := m.InitBatch([][]float64{{1, 2}, {3, 4}}, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
}

func TestResetAffectsAllInstances(t *testing.T) {
	m, xs, labels := newTrained(t, 17)
	_ = labels
	before0 := m.Instance(0).Score(xs[0])
	m.Reset()
	if m.Instance(0).SamplesSeen() != 0 || m.Instance(1).SamplesSeen() != 0 {
		t.Fatal("Reset left samples")
	}
	after0 := m.Instance(0).Score(xs[0])
	if after0 <= before0 {
		t.Fatalf("post-reset score %v should exceed trained %v", after0, before0)
	}
}

func TestSetOpsCountsAcrossInstances(t *testing.T) {
	m, _ := New(Config{Classes: 3, Inputs: 4, Hidden: 2}, rng.New(18))
	var c opcount.Counter
	m.SetOps(&c)
	m.Predict([]float64{1, 2, 3, 4})
	// 3 instances × (hidden 2×4 + output 2×4 MACs) plus residual MACs.
	if c.MulAdd == 0 || c.Cmp != 2 {
		t.Fatalf("ops = %+v", c)
	}
}

func TestMemoryBytesGrowsWithClasses(t *testing.T) {
	one, _ := New(Config{Classes: 1, Inputs: 8, Hidden: 4}, rng.New(19))
	three, _ := New(Config{Classes: 3, Inputs: 8, Hidden: 4}, rng.New(19))
	if three.MemoryBytes() <= 2*one.MemoryBytes() {
		t.Fatalf("memory scaling looks wrong: 1→%d, 3→%d", one.MemoryBytes(), three.MemoryBytes())
	}
	if one.Classes() != 1 || three.Classes() != 3 {
		t.Fatal("Classes()")
	}
}

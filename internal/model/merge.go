package model

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"edgedrift/internal/oselm"
)

// mergeStateMagic heads a serialised merge-state blob: the per-instance
// trained state (β/P plus projection) of one Multi, exported for
// cooperative seeding. Each instance artifact carries its own CRC32
// footer, so the container needs no second checksum.
var mergeStateMagic = [5]byte{'E', 'D', 'M', 'S', '1'}

// Fingerprint returns the model's merge-compatibility fingerprint:
// FNV-1a over the class count and every instance's fingerprint (which
// covers shape, activation, precision, RLS constants and projection
// bits — see oselm.Model.Fingerprint). Two Multis merge cleanly iff
// their fingerprints match.
func (m *Multi) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(m.cfg.Classes))
	for _, ae := range m.instances {
		put(ae.Fingerprint())
	}
	return h.Sum64()
}

// Merge replaces every instance's learned state with the closed-form
// combination of the sources' corresponding instances (see
// oselm.Model.Merge). All sources are validated against every instance
// before any state is written, so an incompatible source — wrapped as
// oselm.ErrMergeIncompatible — leaves m untouched.
func (m *Multi) Merge(srcs ...*Multi) error {
	if len(srcs) == 0 {
		return fmt.Errorf("model: merge: %w", &oselm.MergeError{Reason: "no source models"})
	}
	for k, s := range srcs {
		if s == nil {
			return fmt.Errorf("model: merge source %d: %w", k, &oselm.MergeError{Reason: "nil model"})
		}
		if s.cfg.Classes != m.cfg.Classes {
			return fmt.Errorf("model: merge source %d: %w", k,
				&oselm.MergeError{Reason: fmt.Sprintf("class count %d vs %d", m.cfg.Classes, s.cfg.Classes)})
		}
		for i := range m.instances {
			if err := m.instances[i].Model().CompatibleWith(s.instances[i].Model()); err != nil {
				return fmt.Errorf("model: merge source %d instance %d: %w", k, i, err)
			}
		}
	}
	peers := make([]*oselm.Autoencoder, len(srcs))
	for i := range m.instances {
		for k, s := range srcs {
			peers[k] = s.instances[i]
		}
		if err := m.instances[i].Merge(peers...); err != nil {
			return fmt.Errorf("model: merge instance %d: %w", i, err)
		}
	}
	return nil
}

// ExportMergeState serialises the model's trained state — every
// instance at float64 wire precision, so nothing is lost in transit —
// into a blob MergeStates can consume, locally or across shards.
func (m *Multi) ExportMergeState() ([]byte, error) {
	var buf bytes.Buffer
	buf.Write(mergeStateMagic[:])
	var u4 [4]byte
	binary.LittleEndian.PutUint32(u4[:], uint32(len(m.instances)))
	buf.Write(u4[:])
	for i, ae := range m.instances {
		var inst bytes.Buffer
		if _, err := ae.Save(&inst, oselm.Float64); err != nil {
			return nil, fmt.Errorf("model: export instance %d: %w", i, err)
		}
		var u8 [8]byte
		binary.LittleEndian.PutUint64(u8[:], uint64(inst.Len()))
		buf.Write(u8[:])
		buf.Write(inst.Bytes())
	}
	return buf.Bytes(), nil
}

// decodeMergeState parses one ExportMergeState blob back into its
// per-instance autoencoders.
func decodeMergeState(b []byte) ([]*oselm.Autoencoder, error) {
	if len(b) < len(mergeStateMagic)+4 || !bytes.Equal(b[:len(mergeStateMagic)], mergeStateMagic[:]) {
		return nil, fmt.Errorf("model: not a merge-state blob")
	}
	b = b[len(mergeStateMagic):]
	n := binary.LittleEndian.Uint32(b[:4])
	b = b[4:]
	if n == 0 || n > 1<<16 {
		return nil, fmt.Errorf("model: merge-state blob has implausible instance count %d", n)
	}
	out := make([]*oselm.Autoencoder, 0, n)
	for i := 0; i < int(n); i++ {
		if len(b) < 8 {
			return nil, fmt.Errorf("model: merge-state blob truncated at instance %d", i)
		}
		sz := binary.LittleEndian.Uint64(b[:8])
		b = b[8:]
		if uint64(len(b)) < sz {
			return nil, fmt.Errorf("model: merge-state blob truncated at instance %d", i)
		}
		ae, err := oselm.LoadAutoencoder(bytes.NewReader(b[:sz]))
		if err != nil {
			return nil, fmt.Errorf("model: merge-state instance %d: %w", i, err)
		}
		out = append(out, ae)
		b = b[sz:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("model: merge-state blob has %d trailing bytes", len(b))
	}
	return out, nil
}

// MergeStates decodes peer state blobs (from ExportMergeState, possibly
// shipped across shards) and replaces the model's learned state with
// their closed-form combination. Every blob is decoded and validated
// against every instance before any state is written; incompatible
// peers are rejected with oselm.ErrMergeIncompatible.
func (m *Multi) MergeStates(states [][]byte) error {
	if len(states) == 0 {
		return fmt.Errorf("model: merge: %w", &oselm.MergeError{Reason: "no peer states"})
	}
	decoded := make([][]*oselm.Autoencoder, len(states))
	for k, st := range states {
		aes, err := decodeMergeState(st)
		if err != nil {
			return err
		}
		if len(aes) != len(m.instances) {
			return fmt.Errorf("model: merge state %d: %w", k,
				&oselm.MergeError{Reason: fmt.Sprintf("class count %d vs %d", len(m.instances), len(aes))})
		}
		for i := range m.instances {
			if err := m.instances[i].Model().CompatibleWith(aes[i].Model()); err != nil {
				return fmt.Errorf("model: merge state %d instance %d: %w", k, i, err)
			}
		}
		decoded[k] = aes
	}
	peers := make([]*oselm.Autoencoder, len(decoded))
	for i := range m.instances {
		for k := range decoded {
			peers[k] = decoded[k][i]
		}
		if err := m.instances[i].Merge(peers...); err != nil {
			return fmt.Errorf("model: merge instance %d: %w", i, err)
		}
	}
	return nil
}

package model

import (
	"fmt"

	"edgedrift/internal/oselm"
)

// ConvertPrecision returns a new multi-instance model computing at
// precision p whose per-instance state is the converted image of m's
// (see oselm.Model.ConvertPrecision: weights narrowed, RLS state copied
// bit-for-bit). The receiver is not mutated — it is the retained origin
// of a runtime precision demotion, resumed as-is on promotion.
func (m *Multi) ConvertPrecision(p oselm.Precision) (*Multi, error) {
	cfg := m.cfg
	cfg.Precision = p
	nm := &Multi{
		cfg:          cfg,
		instances:    make([]*oselm.Autoencoder, len(m.instances)),
		scores:       make([]float64, len(m.instances)),
		parWorkers:   1,
		parThreshold: defaultParallelThreshold,
		predictMACs:  m.predictMACs,
	}
	for i, ae := range m.instances {
		conv, err := ae.ConvertPrecision(p)
		if err != nil {
			return nil, fmt.Errorf("model: instance %d: %w", i, err)
		}
		nm.instances[i] = conv
	}
	return nm, nil
}

package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"edgedrift/internal/oselm"
)

// multiMagic identifies a serialised multi-instance model (version 1).
var multiMagic = [6]byte{'M', 'U', 'L', 'T', 'I', '1'}

// ErrBadFormat reports a stream that is not a serialised multi-instance
// model of a known version.
var ErrBadFormat = errors.New("model: not a serialised multi-instance model (or unsupported version)")

// Save serialises the model — configuration plus every instance — so a
// host-trained model can be shipped to a device (use oselm.Float32 for
// the halved deployment footprint).
func (m *Multi) Save(w io.Writer, prec oselm.Precision) (int64, error) {
	var n int64
	if k, err := w.Write(multiMagic[:]); err != nil {
		return int64(k), err
	}
	n += int64(len(multiMagic))
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], uint32(m.cfg.Classes))
	if _, err := w.Write(head[:]); err != nil {
		return n, err
	}
	n += 4
	for i, ae := range m.instances {
		k, err := ae.Save(w, prec)
		n += k
		if err != nil {
			return n, fmt.Errorf("model: instance %d: %w", i, err)
		}
	}
	return n, nil
}

// Load deserialises a model written by Save.
func Load(r io.Reader) (*Multi, error) {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, fmt.Errorf("model: load header: %w", err)
	}
	if got != multiMagic {
		return nil, ErrBadFormat
	}
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	classes := int(binary.LittleEndian.Uint32(head[:]))
	if classes <= 0 || classes > 1<<20 {
		return nil, ErrBadFormat
	}
	m := &Multi{
		instances: make([]*oselm.Autoencoder, classes),
		scores:    make([]float64, classes),
	}
	for i := range m.instances {
		ae, err := oselm.LoadAutoencoder(r)
		if err != nil {
			return nil, fmt.Errorf("model: instance %d: %w", i, err)
		}
		m.instances[i] = ae
	}
	c0 := m.instances[0].Model().Config()
	m.cfg = Config{
		Classes:     classes,
		Inputs:      c0.Inputs,
		Hidden:      c0.Hidden,
		Forgetting:  c0.Forgetting,
		Ridge:       c0.Ridge,
		WeightScale: c0.WeightScale,
	}
	for i, ae := range m.instances[1:] {
		ci := ae.Model().Config()
		if ci.Inputs != c0.Inputs {
			return nil, fmt.Errorf("model: instance %d dimension %d differs from %d", i+1, ci.Inputs, c0.Inputs)
		}
	}
	return m, nil
}

package model

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"edgedrift/internal/ckpt"
	"edgedrift/internal/oselm"
)

// multiMagicV1 and multiMagicV2 identify serialised multi-instance
// models. v2 wraps the v1 layout (header plus per-instance artifacts) in
// a whole-stream CRC32 footer, covering the per-instance checksums too.
// Save writes v2; Load accepts both.
var (
	multiMagicV1 = [6]byte{'M', 'U', 'L', 'T', 'I', '1'}
	multiMagicV2 = [6]byte{'M', 'U', 'L', 'T', 'I', '2'}
)

// ErrBadFormat reports a stream that is not a serialised multi-instance
// model of a known version, or a v2 artifact that is truncated or
// corrupt.
var ErrBadFormat = errors.New("model: not a serialised multi-instance model (or unsupported version)")

// Save serialises the model — configuration plus every instance — so a
// host-trained model can be shipped to a device (use oselm.Float32 for
// the halved deployment footprint).
func (m *Multi) Save(w io.Writer, prec oselm.Precision) (int64, error) {
	cw := ckpt.NewWriter(w)
	if _, err := cw.Write(multiMagicV2[:]); err != nil {
		return cw.N(), err
	}
	var head [4]byte
	binary.LittleEndian.PutUint32(head[:], uint32(m.cfg.Classes))
	if _, err := cw.Write(head[:]); err != nil {
		return cw.N(), err
	}
	for i, ae := range m.instances {
		if _, err := ae.Save(cw, prec); err != nil {
			return cw.N(), fmt.Errorf("model: instance %d: %w", i, err)
		}
	}
	if err := cw.WriteFooter(); err != nil {
		return cw.N(), err
	}
	return cw.N(), nil
}

// Load deserialises a model written by Save — the current checksummed v2
// format or the legacy v1 format. In the v2 path every failure wraps
// ErrBadFormat so callers can classify corruption with errors.Is.
func Load(r io.Reader) (*Multi, error) {
	var got [6]byte
	if _, err := io.ReadFull(r, got[:]); err != nil {
		return nil, badFormat(fmt.Errorf("load header: %w", err))
	}
	switch got {
	case multiMagicV1:
		return loadBody(r)
	case multiMagicV2:
		cr := ckpt.NewReader(r)
		cr.Fold(got[:])
		m, err := loadBody(cr)
		if err != nil {
			return nil, badFormat(err)
		}
		if err := cr.VerifyFooter(); err != nil {
			return nil, badFormat(err)
		}
		return m, nil
	default:
		return nil, ErrBadFormat
	}
}

// badFormat wraps a v2 load failure so it matches both ErrBadFormat and
// the underlying cause.
func badFormat(err error) error {
	if errors.Is(err, ErrBadFormat) {
		return err
	}
	return fmt.Errorf("model: corrupt artifact: %w: %w", ErrBadFormat, err)
}

// loadBody parses the version-independent payload that follows the magic.
func loadBody(r io.Reader) (*Multi, error) {
	var head [4]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, err
	}
	classes := int(binary.LittleEndian.Uint32(head[:]))
	if classes <= 0 || classes > 1<<20 {
		return nil, ErrBadFormat
	}
	m := &Multi{
		instances:    make([]*oselm.Autoencoder, classes),
		scores:       make([]float64, classes),
		parWorkers:   1,
		parThreshold: defaultParallelThreshold,
	}
	for i := range m.instances {
		ae, err := oselm.LoadAutoencoder(r)
		if err != nil {
			return nil, fmt.Errorf("model: instance %d: %w", i, err)
		}
		m.instances[i] = ae
	}
	c0 := m.instances[0].Model().Config()
	m.cfg = Config{
		Classes:     classes,
		Inputs:      c0.Inputs,
		Hidden:      c0.Hidden,
		Forgetting:  c0.Forgetting,
		Ridge:       c0.Ridge,
		WeightScale: c0.WeightScale,
		Precision:   c0.Precision,
	}
	// Restore the fields New derives, so SetParallelism works on a
	// loaded model exactly as on a constructed one.
	m.predictMACs = classes * 2 * c0.Inputs * c0.Hidden
	for i, ae := range m.instances[1:] {
		ci := ae.Model().Config()
		if ci.Inputs != c0.Inputs {
			return nil, fmt.Errorf("model: instance %d dimension %d differs from %d", i+1, ci.Inputs, c0.Inputs)
		}
	}
	return m, nil
}

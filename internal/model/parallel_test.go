package model

import (
	"fmt"
	"testing"

	"edgedrift/internal/opcount"
	"edgedrift/internal/rng"
)

func testInputs(n, d int, seed uint64) [][]float64 {
	r := rng.New(seed)
	xs := make([][]float64, n)
	for i := range xs {
		xs[i] = make([]float64, d)
		r.FillUniform(xs[i], -1, 1)
	}
	return xs
}

// Parallel Predict must be bit-identical to sequential Predict: same
// label, same winning score, same per-instance score vector.
func TestParallelPredictMatchesSequential(t *testing.T) {
	const d = 32
	seq, err := New(Config{Classes: 5, Inputs: d, Hidden: 16}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	par, err := New(Config{Classes: 5, Inputs: d, Hidden: 16}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	defer par.Close()
	par.SetParallelism(3)
	par.SetParallelThreshold(1)

	for i, x := range testInputs(200, d, 42) {
		// Interleave training so the instances diverge from each other.
		sl, ss := seq.TrainClosest(x)
		pl, ps := par.TrainClosest(x)
		if sl != pl || ss != ps {
			t.Fatalf("sample %d: parallel (label=%d score=%v) != sequential (label=%d score=%v)", i, pl, ps, sl, ss)
		}
		for c := range seq.Scores() {
			if seq.Scores()[c] != par.Scores()[c] {
				t.Fatalf("sample %d: score[%d] %v != %v", i, c, par.Scores()[c], seq.Scores()[c])
			}
		}
	}
}

// An attached op counter forces the sequential path — the shared counter
// is not goroutine-safe and instrumented runs must count deterministically.
func TestParallelDisabledWithOpsCounter(t *testing.T) {
	m, err := New(Config{Classes: 4, Inputs: 32, Hidden: 16}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetParallelism(4)
	m.SetParallelThreshold(1)
	var ops opcount.Counter
	m.SetOps(&ops)
	if m.parallelOK() {
		t.Fatal("parallel path engaged with an op counter attached")
	}
	x := make([]float64, 32)
	m.Predict(x)
	if ops.Total() == 0 {
		t.Fatal("op counter not incremented on the sequential fallback")
	}
	m.SetOps(nil)
	if !m.parallelOK() {
		t.Fatal("parallel path should engage once the counter is detached")
	}
}

// Below the work threshold the pool must not engage (nor be created).
func TestParallelThresholdFallback(t *testing.T) {
	m, err := New(Config{Classes: 2, Inputs: 8, Hidden: 4}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetParallelism(4)
	x := make([]float64, 8)
	m.Predict(x)
	if m.pool != nil {
		t.Fatalf("pool created for a %d-MAC Predict under the %d threshold", m.predictMACs, m.parThreshold)
	}
}

func TestCloseThenSequentialPredict(t *testing.T) {
	m, err := New(Config{Classes: 4, Inputs: 32, Hidden: 16}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	m.SetParallelism(2)
	m.SetParallelThreshold(1)
	x := make([]float64, 32)
	wantL, wantS := m.Predict(x)
	m.Close()
	gotL, gotS := m.Predict(x)
	if gotL != wantL || gotS != wantS {
		t.Fatalf("after Close: (%d, %v) != (%d, %v)", gotL, gotS, wantL, wantS)
	}
}

// BenchmarkPredict compares sequential and parallel scoring at a
// production-ish shape (C=8 instances, D=511, H=64).
func BenchmarkPredict(b *testing.B) {
	const (
		classes = 8
		d       = 511
		h       = 64
	)
	x := make([]float64, d)
	rng.New(3).FillUniform(x, -1, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("C%d_D%d_H%d_workers%d", classes, d, h, workers), func(b *testing.B) {
			m, err := New(Config{Classes: classes, Inputs: d, Hidden: h}, rng.New(11))
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			if workers > 1 {
				m.SetParallelism(workers)
				m.SetParallelThreshold(1)
			}
			m.Predict(x) // warm the pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Predict(x)
			}
		})
	}
}

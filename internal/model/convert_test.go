package model

import (
	"math"
	"testing"

	"edgedrift/internal/oselm"
	"edgedrift/internal/rng"
)

// TestMultiConvertPrecision checks the multi-instance conversion: every
// instance is narrowed, the twin predicts within single-precision
// rounding of the origin at the conversion instant, and the origin stays
// bit-frozen while the twin trains on.
func TestMultiConvertPrecision(t *testing.T) {
	const classes, d = 3, 8
	m, err := New(Config{Classes: classes, Inputs: d, Hidden: 6}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	x := make([]float64, d)
	for i := 0; i < 120; i++ {
		c := i % classes
		for j := range x {
			x[j] = r.Normal(float64(c)*3, 0.3)
		}
		m.Train(x, c)
	}
	twin, err := m.ConvertPrecision(oselm.Float32)
	if err != nil {
		t.Fatal(err)
	}
	if twin.Precision() != oselm.Float32 {
		t.Fatalf("twin precision %v", twin.Precision())
	}
	if len(twin.instances) != classes {
		t.Fatalf("twin has %d instances, want %d", len(twin.instances), classes)
	}
	for i := 0; i < 50; i++ {
		for j := range x {
			x[j] = r.Normal(float64(i%classes)*3, 0.3)
		}
		l64, s64 := m.Predict(x)
		l32, s32 := twin.Predict(x)
		if l64 != l32 {
			t.Fatalf("labels diverged at conversion: %d vs %d", l64, l32)
		}
		if diff := math.Abs(s64 - s32); diff > 1e-4 {
			t.Fatalf("scores diverged %g at conversion", diff)
		}
	}
	// The instance-level error (here: widening) propagates up.
	if _, err := twin.ConvertPrecision(oselm.Float64); err == nil {
		t.Fatal("accepted a widening conversion")
	}
}

// TestMultiConvertOriginFrozen replays identical queries before and
// after the twin trains and requires bit-equal origin scores.
func TestMultiConvertOriginFrozen(t *testing.T) {
	const classes, d = 2, 6
	m, err := New(Config{Classes: classes, Inputs: d, Hidden: 4}, rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(8)
	x := make([]float64, d)
	for i := 0; i < 80; i++ {
		r.FillUniform(x, -1, 1)
		m.Train(x, i%classes)
	}
	queries := make([][]float64, 30)
	for i := range queries {
		q := make([]float64, d)
		r.FillUniform(q, -1, 1)
		queries[i] = q
	}
	wantScores := make([]float64, len(queries))
	wantLabels := make([]int, len(queries))
	for i, q := range queries {
		wantLabels[i], wantScores[i] = m.Predict(q)
	}
	twin, err := m.ConvertPrecision(oselm.Float32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		r.FillUniform(x, -1, 1)
		twin.Train(x, i%classes)
	}
	for i, q := range queries {
		l, s := m.Predict(q)
		if l != wantLabels[i] || s != wantScores[i] {
			t.Fatalf("query %d: origin moved after twin training: (%d,%v) vs (%d,%v)",
				i, l, s, wantLabels[i], wantScores[i])
		}
	}
}

package model

import (
	"testing"

	"edgedrift/internal/rng"
)

// Steady-state prediction and sequential training across the C-instance
// model must stay allocation-free: Predict fans out to every instance's
// Score and Train touches exactly one instance, all through pre-sized
// scratch buffers.

func TestPredictZeroAllocs(t *testing.T) {
	m, err := New(Config{Classes: 3, Inputs: 64, Hidden: 22}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	rng.New(3).FillUniform(x, -1, 1)
	if n := testing.AllocsPerRun(200, func() { m.Predict(x) }); n != 0 {
		t.Fatalf("Predict allocates %v objects per call, want 0", n)
	}
}

func TestTrainClosestZeroAllocs(t *testing.T) {
	m, err := New(Config{Classes: 3, Inputs: 64, Hidden: 22}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 64)
	rng.New(3).FillUniform(x, -1, 1)
	if n := testing.AllocsPerRun(200, func() { m.TrainClosest(x) }); n != 0 {
		t.Fatalf("TrainClosest allocates %v objects per call, want 0", n)
	}
}

// The parallel scoring path hands work to persistent goroutines over
// pre-allocated channels; once the pool is warm, Predict must stay
// allocation-free there too.
func TestParallelPredictZeroAllocs(t *testing.T) {
	m, err := New(Config{Classes: 4, Inputs: 64, Hidden: 22}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.SetParallelism(2)
	m.SetParallelThreshold(1) // force the concurrent path at this size
	x := make([]float64, 64)
	rng.New(3).FillUniform(x, -1, 1)
	m.Predict(x) // warm the pool
	if n := testing.AllocsPerRun(200, func() { m.Predict(x) }); n != 0 {
		t.Fatalf("parallel Predict allocates %v objects per call, want 0", n)
	}
}

// Intrusion: the paper's NSL-KDD scenario end to end — a network
// intrusion detector whose traffic distribution shifts mid-stream, with
// the proposed detector compared against a no-detection baseline.
//
// Run with:
//
//	go run ./examples/intrusion
package main

import (
	"fmt"
	"log"

	"edgedrift"
	"edgedrift/internal/datasets/nslkdd"
	"edgedrift/internal/eval"
)

func main() {
	ds := nslkdd.Generate(nslkdd.DefaultParams())
	fmt.Printf("NSL-KDD surrogate: %d training samples, %d test samples, drift at %d\n",
		len(ds.TrainX), len(ds.TestX), ds.DriftAt+1)

	// The proposed method: per-class OS-ELM autoencoders + sequential
	// centroid drift detection, the paper's W=100 configuration.
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2,
		Inputs:  nslkdd.Features,
		Hidden:  22,
		Window:  100,
		NRecon:  1500,
		NSearch: 30,
		NUpdate: 500,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Fit(ds.TrainX, ds.TrainY); err != nil {
		log.Fatal(err)
	}

	// A static baseline for contrast (same architecture, never adapts).
	base, err := edgedrift.New(edgedrift.Options{
		Classes: 2, Inputs: nslkdd.Features, Hidden: 22, Window: 100,
		DriftThreshold: 1e18, ErrorThreshold: 1e18, // never fires
		Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Fit(ds.TrainX, ds.TrainY); err != nil {
		log.Fatal(err)
	}

	monMap := eval.NewLabelMapper(2, 2)
	baseMap := eval.NewLabelMapper(2, 2)
	var monC, baseC int
	for i, x := range ds.TestX {
		truth := ds.TestY[i]

		r := mon.Process(x)
		if r.DriftDetected {
			fmt.Printf("sample %5d: DRIFT detected (ground truth %d, delay %d) — sequential reconstruction begins\n",
				i, ds.DriftAt, i-ds.DriftAt)
			monMap.Reset()
		}
		if monMap.Map(r.Label) == truth {
			monC++
		}
		monMap.Observe(r.Label, truth)

		label, _ := base.Predict(x)
		if baseMap.Map(label) == truth {
			baseC++
		}
		baseMap.Observe(label, truth)
	}

	n := float64(len(ds.TestX))
	fmt.Printf("\nproposed method accuracy: %.1f%% (reconstructions: %d)\n",
		100*float64(monC)/n, mon.Reconstructions())
	fmt.Printf("static baseline accuracy: %.1f%%\n", 100*float64(baseC)/n)
	fmt.Printf("detector state: %d bytes — fits a 264 kB microcontroller alongside the model\n",
		mon.MemoryBytes())
}

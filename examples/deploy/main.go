// Deploy: the host-train → device-run workflow end to end.
//
//  1. "Host": train and calibrate a monitor on cooling-fan spectra, then
//     serialise it — float64 for archival, float32 for the device.
//  2. "Device": load the float32 artifact and keep monitoring, with
//     byte-identical API behaviour.
//  3. "MCU": quantise the same detector to Q16.16 fixed point — the
//     integer-only pipeline an FPU-less Cortex-M0+ actually executes —
//     and compare latency and memory on the Pico cost model.
//
// Run with:
//
//	go run ./examples/deploy
package main

import (
	"bytes"
	"fmt"
	"log"

	"edgedrift"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/device"
	"edgedrift/internal/fixed"
	"edgedrift/internal/opcount"
)

func main() {
	gen := coolingfan.NewGenerator(coolingfan.DefaultParams())
	trainX, trainY := gen.TrainingSet(120)
	stream := gen.TestSudden()

	// --- Host side: train, calibrate, serialise. ---
	host, err := edgedrift.New(edgedrift.Options{
		Classes: 1, Inputs: coolingfan.Features, Hidden: 22,
		Window: 50, NRecon: 200, NUpdate: 50, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := host.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}

	var f64, f32 bytes.Buffer
	if err := host.Save(&f64, edgedrift.Float64); err != nil {
		log.Fatal(err)
	}
	if err := host.Save(&f32, edgedrift.Float32); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host: fitted on %d spectra; artifacts: %d bytes (float64), %d bytes (float32)\n",
		len(trainX), f64.Len(), f32.Len())

	// --- Device side: load the float32 artifact and monitor. ---
	dev, err := edgedrift.LoadMonitor(&f32)
	if err != nil {
		log.Fatal(err)
	}
	for i, x := range stream.X {
		if dev.Process(x).DriftDetected {
			fmt.Printf("device: drift detected at sample %d (ground truth %d)\n", i, stream.DriftAt)
			break
		}
	}

	// --- MCU side: Q16.16 fixed point, detect-only. ---
	mcu := fixed.QuantizeDetector(host.Detector())
	var mcuOps opcount.Counter
	mcu.SetOps(&mcuOps)
	mcuSamples := 0
	for i, x := range stream.X {
		mcuSamples++
		if mcu.Process(fixed.QuantizeVec(x)).DriftDetected {
			fmt.Printf("mcu:    drift detected at sample %d — flag raised for the host to retrain\n", i)
			break
		}
	}

	pico := device.PiPico()
	picoFx := device.PiPicoFixed()
	var hostOps opcount.Counter
	host.SetOps(&hostOps)
	host.Predict(stream.X[0])
	fmt.Println()
	fmt.Printf("one prediction on the Pico model:  float64 %.1f ms   Q16.16 %.2f ms\n",
		pico.Millis(hostOps), picoFx.Millis(mcuOps)/float64(mcuSamples))
	fmt.Printf("retained memory:                   float64 %.1f kB   Q16.16 %.1f kB (RAM: 264 kB)\n",
		device.KB(host.MemoryBytes()), device.KB(mcu.MemoryBytes()))
}

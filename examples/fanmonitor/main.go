// Fanmonitor: the paper's cooling-fan condition-monitoring scenario.
// A single "normal" vibration-spectrum class is learned; the monitor
// then watches three streams exhibiting sudden, gradual and reoccurring
// drifts (damaged fan blades) and reports how window size affects what
// gets detected.
//
// Run with:
//
//	go run ./examples/fanmonitor
package main

import (
	"fmt"
	"log"

	"edgedrift"
	"edgedrift/internal/datasets/coolingfan"
)

func main() {
	gen := coolingfan.NewGenerator(coolingfan.DefaultParams())
	trainX, trainY := gen.TrainingSet(120)
	fmt.Printf("trained on %d normal-fan spectra (%d frequency bins each)\n\n",
		len(trainX), coolingfan.Features)

	streams := []*coolingfan.Stream{
		gen.TestSudden(),      // holes in a blade from sample 120 on
		gen.TestGradual(),     // chipped blade gradually mixed in, 120–600
		gen.TestReoccurring(), // chipped blade only on samples 120–170
	}

	for _, w := range []int{10, 50, 150} {
		fmt.Printf("window size W=%d\n", w)
		for _, st := range streams {
			mon, err := edgedrift.New(edgedrift.Options{
				Classes: 1,
				Inputs:  coolingfan.Features,
				Hidden:  22,
				Window:  w,
				NRecon:  200,
				NUpdate: 50,
				Seed:    1,
			})
			if err != nil {
				log.Fatal(err)
			}
			if err := mon.Fit(trainX, trainY); err != nil {
				log.Fatal(err)
			}
			detectedAt := -1
			for i, x := range st.X {
				if mon.Process(x).DriftDetected && detectedAt == -1 && i >= st.DriftAt {
					detectedAt = i
				}
			}
			switch {
			case detectedAt >= 0:
				fmt.Printf("  %-11s drift detected at sample %3d (delay %3d)\n",
					st.Name+":", detectedAt, detectedAt-st.DriftAt)
			case st.Name == "reoccurring":
				fmt.Printf("  %-11s not detected — the short damage burst escaped the %d-sample window\n",
					st.Name+":", w)
			default:
				fmt.Printf("  %-11s not detected\n", st.Name+":")
			}
		}
		fmt.Println()
	}
	fmt.Println("smaller windows react faster to sudden drifts; larger windows")
	fmt.Println("smooth over short-lived (reoccurring) changes — choose W for the")
	fmt.Println("drift behaviour your deployment expects (paper §5.2).")
}

// Picosim: budget the proposed method for a Raspberry Pi Pico.
// The monitor runs a cooling-fan stream with an operation counter
// attached; counted work is converted into modelled Cortex-M0+ time, and
// the retained state is checked against the Pico's 264 kB of RAM — the
// paper's §5.3/§5.4 feasibility argument, reproduced without hardware.
//
// Run with:
//
//	go run ./examples/picosim
package main

import (
	"fmt"
	"log"

	"edgedrift"
	"edgedrift/internal/core"
	"edgedrift/internal/datasets/coolingfan"
	"edgedrift/internal/device"
)

func main() {
	gen := coolingfan.NewGenerator(coolingfan.DefaultParams())
	trainX, trainY := gen.TrainingSet(120)
	stream := gen.TestSudden()

	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 1,
		Inputs:  coolingfan.Features,
		Hidden:  22,
		Window:  50,
		NRecon:  200,
		NUpdate: 50,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}

	var ops edgedrift.OpCounter
	mon.SetOps(&ops)
	for _, x := range stream.X {
		mon.Process(x)
	}

	pico := device.PiPico()
	pi4 := device.Pi4()
	fmt.Printf("processed %d samples (drift at %d, %d reconstruction(s))\n\n",
		len(stream.X), stream.DriftAt, mon.Reconstructions())

	// This simulator computes in float64 for numerical transparency; a
	// deployed microcontroller build stores weights and centroids as
	// float32, halving the footprint (as the paper's Pico port does).
	f64 := mon.MemoryBytes()
	f32 := f64 / 2
	fmt.Printf("memory: model+detector retain %.1f kB as float64 (%.1f kB deployed as float32)\n",
		device.KB(f64), device.KB(f32))
	fmt.Printf("        Pico RAM is %.0f kB: float32 deployment fits=%v\n\n",
		device.KB(int(pico.RAMBytes)), pico.FitsIn(f32, 0))

	fmt.Printf("whole-stream modelled time: Pico %.1f s, Pi 4 %.2f s\n\n",
		pico.Seconds(ops), pi4.Seconds(ops))

	fmt.Println("per-stage breakdown on the Pico model (per invocation):")
	det := mon.Detector()
	for _, s := range core.Stages() {
		stageOps, n := det.StageOps(s)
		if n == 0 {
			fmt.Printf("  %-44s never ran\n", s.String())
			continue
		}
		fmt.Printf("  %-44s %8.2f ms ×%d\n", s.String(), pico.Millis(stageOps)/float64(n), n)
	}
	fmt.Println("\ndetection overhead (distance computation) stays well under one")
	fmt.Println("label prediction — the paper's feasibility claim for the Pico.")
}

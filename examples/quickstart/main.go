// Quickstart: detect a sudden concept drift in a synthetic 2-class
// stream with the public edgedrift API.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"edgedrift"
	"edgedrift/internal/datasets/synth"
	"edgedrift/internal/rng"
)

func main() {
	// Two well-separated classes; after sample 1,000 the whole
	// distribution shifts (a sudden drift).
	oldConcept := synth.NewGaussian([][]float64{{0, 0, 0, 0}, {5, 5, 5, 5}}, 0.3)
	newConcept := synth.ShiftedGaussian(oldConcept, 4)

	r := rng.New(42)
	trainX, trainY := synth.TrainingSet(oldConcept, 400, r)
	stream, err := synth.Generate(oldConcept, newConcept, 4000,
		synth.Spec{Kind: synth.Sudden, Start: 1000}, r)
	if err != nil {
		log.Fatal(err)
	}

	// One monitor = OS-ELM autoencoder per class + sequential drift
	// detector. Everything below runs in O(1) memory per sample.
	mon, err := edgedrift.New(edgedrift.Options{
		Classes: 2,
		Inputs:  4,
		Hidden:  8,
		Window:  50,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mon.Fit(trainX, trainY); err != nil {
		log.Fatal(err)
	}
	thErr, thDrift := mon.Thresholds()
	fmt.Printf("calibrated: θ_error=%.4f θ_drift=%.2f, state=%d bytes\n",
		thErr, thDrift, mon.MemoryBytes())

	correct, total := 0, 0
	for i, x := range stream.X {
		res := mon.Process(x)
		if res.DriftDetected {
			fmt.Printf("sample %4d: concept drift detected (dist %.2f ≥ θ_drift %.2f) — reconstructing model\n",
				i, res.Dist, thDrift)
		}
		if res.Phase == edgedrift.Monitoring {
			total++
			// Labels after a reconstruction are cluster identities; for
			// this demo the stream keeps its class geometry, so raw
			// agreement is a fine proxy.
			if res.Label == stream.Labels[i] {
				correct++
			}
		}
	}

	fmt.Printf("drift events at samples %v (ground truth: 1000)\n", mon.DriftEvents())
	fmt.Printf("reconstructions completed: %d\n", mon.Reconstructions())
	fmt.Printf("monitored-phase label agreement: %.1f%% over %d samples\n",
		100*float64(correct)/float64(total), total)
}
